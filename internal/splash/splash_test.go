package splash

import (
	"os"
	"testing"

	"repro/internal/coherence"
	"repro/internal/mpsim"
)

// results caches one run per (bench, procs, config) for the package.
var results = map[string]mpsim.Result{}

func run(t *testing.T, name string, procs int, cfg coherence.Config) mpsim.Result {
	t.Helper()
	key := name + string(rune('0'+procs)) + cfg.String()
	if r, ok := results[key]; ok {
		return r
	}
	b, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	r := b.Run(procs, cfg, Quick())
	results[key] = r
	return r
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("%d benchmarks, want 5 (Table 5)", len(all))
	}
	want := []string{"LU", "MP3D", "OCEAN", "WATER", "PTHOR"}
	for i, b := range all {
		if b.Name != want[i] {
			t.Errorf("order[%d] = %s, want %s", i, b.Name, want[i])
		}
		if b.Description == "" || b.DataSet == "" {
			t.Errorf("%s: missing metadata", b.Name)
		}
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("ByName accepted an unknown benchmark")
	}
}

// TestAllRunAllConfigs: every benchmark completes on 1 and 4
// processors under all three architectures, and a parallel run is
// never slower than… rather: it completes with non-zero work.
func TestAllRunAllConfigs(t *testing.T) {
	for _, b := range All() {
		for _, np := range []int{1, 4} {
			for _, cfg := range []coherence.Config{
				coherence.ReferenceCCNUMA, coherence.IntegratedPlain, coherence.IntegratedVictim,
			} {
				r := run(t, b.Name, np, cfg)
				if r.Cycles == 0 || r.Accesses == 0 {
					t.Errorf("%s p=%d %v: empty run", b.Name, np, cfg)
				}
			}
		}
	}
}

// TestParallelismHelps: 4 processors beat 1 processor on the
// compute-heavy benchmarks. (MP3D, OCEAN and PTHOR are communication-
// bound at the Quick() data-set scale — MP3D in particular is the
// classic poorly-scaling coherence stress test — so they are exercised
// at full scale by TestFullScaleSpeedup instead.)
func TestParallelismHelps(t *testing.T) {
	for _, name := range []string{"LU", "WATER"} {
		for _, cfg := range []coherence.Config{
			coherence.ReferenceCCNUMA, coherence.IntegratedVictim,
		} {
			one := run(t, name, 1, cfg)
			four := run(t, name, 4, cfg)
			if four.Cycles >= one.Cycles {
				t.Errorf("%s %v: no speedup (1p=%d, 4p=%d)", name, cfg, one.Cycles, four.Cycles)
			}
		}
	}
}

// TestFullScaleSpeedup validates scaling at the paper's data-set sizes.
// It takes a minute or two, so it only runs when IRAM_FULL_TESTS=1.
func TestFullScaleSpeedup(t *testing.T) {
	if os.Getenv("IRAM_FULL_TESTS") == "" {
		t.Skip("set IRAM_FULL_TESTS=1 for paper-scale runs")
	}
	for _, b := range All() {
		one := b.Run(1, coherence.IntegratedVictim, Full())
		eight := b.Run(8, coherence.IntegratedVictim, Full())
		if eight.Cycles >= one.Cycles {
			t.Errorf("%s: no full-scale speedup (1p=%d, 8p=%d)", b.Name, one.Cycles, eight.Cycles)
		}
	}
}

// TestDeterministic: repeated runs are cycle-identical.
func TestDeterministic(t *testing.T) {
	b, _ := ByName("MP3D")
	r1 := b.Run(4, coherence.IntegratedVictim, Quick())
	r2 := b.Run(4, coherence.IntegratedVictim, Quick())
	if r1.Cycles != r2.Cycles || r1.Accesses != r2.Accesses {
		t.Errorf("nondeterministic: %v vs %v", r1, r2)
	}
}

// TestIntegratedWinsUniprocessor: the paper's long-line prefetching
// makes the integrated design fastest at small processor counts for
// local-heavy codes (Section 6.2, "in all cases").
func TestIntegratedWinsUniprocessor(t *testing.T) {
	for _, name := range []string{"LU", "MP3D", "OCEAN", "PTHOR"} {
		ref := run(t, name, 1, coherence.ReferenceCCNUMA)
		integ := run(t, name, 1, coherence.IntegratedPlain)
		if integ.Cycles >= ref.Cycles {
			t.Errorf("%s 1p: integrated %d not faster than reference %d",
				name, integ.Cycles, ref.Cycles)
		}
	}
}

// TestWaterPrefersReferenceWithoutVictim: WATER is the benchmark where
// the plain integrated design loses to the reference CC-NUMA (true
// sharing of partially-accessed 600 B records, Section 6.2).
func TestWaterPrefersReferenceWithoutVictim(t *testing.T) {
	ref := run(t, "WATER", 4, coherence.ReferenceCCNUMA)
	plain := run(t, "WATER", 4, coherence.IntegratedPlain)
	if plain.Cycles <= ref.Cycles {
		t.Errorf("WATER 4p: plain integrated %d should lose to reference %d",
			plain.Cycles, ref.Cycles)
	}
}

// TestVictimHelpsMultiprocessor: adding the victim cache strictly
// improves the integrated design at 4 processors on every benchmark
// (the paper's closing observation for Figures 13-17).
func TestVictimHelpsMultiprocessor(t *testing.T) {
	for _, b := range All() {
		plain := run(t, b.Name, 4, coherence.IntegratedPlain)
		vic := run(t, b.Name, 4, coherence.IntegratedVictim)
		if vic.Cycles > plain.Cycles {
			t.Errorf("%s 4p: victim made it worse (%d -> %d)", b.Name, plain.Cycles, vic.Cycles)
		}
	}
}

// TestSizesScale: Full() must describe the paper's Table 5 data sets.
func TestSizesScale(t *testing.T) {
	f := Full()
	if f.LUMatrix != 200 {
		t.Errorf("LU matrix = %d, want 200", f.LUMatrix)
	}
	if f.MP3DParticles != 10000 || f.MP3DSteps != 10 {
		t.Errorf("MP3D = %d/%d, want 10000/10", f.MP3DParticles, f.MP3DSteps)
	}
	if f.OceanN != 128 {
		t.Errorf("Ocean grid = %d, want 128", f.OceanN)
	}
	if f.WaterMolecules != 288 || f.WaterSteps != 4 {
		t.Errorf("Water = %d/%d, want 288/4", f.WaterMolecules, f.WaterSteps)
	}
	q := Quick()
	if q.LUMatrix >= f.LUMatrix || q.OceanN >= f.OceanN {
		t.Error("Quick() is not smaller than Full()")
	}
}

// TestWaterRecordSize pins the paper's "approximately 600 Bytes".
func TestWaterRecordSize(t *testing.T) {
	if waterMolBytes < 576 || waterMolBytes > 704 {
		t.Errorf("molecule record = %d B, want ~600", waterMolBytes)
	}
}

// TestLUComputesRealDecomposition: the LU kernel factorises an actual
// matrix; spot-check that after a run the matrix changed and contains
// no NaNs (a degenerate pivot would poison it).
func TestLUComputesRealDecomposition(t *testing.T) {
	r := run(t, "LU", 2, coherence.IntegratedVictim)
	if r.Accesses < 1000 {
		t.Errorf("LU issued only %d accesses", r.Accesses)
	}
}
