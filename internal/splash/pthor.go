package splash

import (
	"repro/internal/coherence"
	"repro/internal/mpsim"
)

// runPthor models the SPLASH distributed-time logic simulator on a
// synthesized RISC-like circuit: gates are clustered (most wires are
// short, within a cluster of 32 gates) with a fraction of long wires
// (cross-partition fanin, e.g. buses and control). Gates are
// partitioned contiguously; each timestep a processor re-evaluates its
// gates whose inputs changed, reading the (possibly remote) input gate
// values and publishing its own — the irregular, fine-grained sharing
// that makes PTHOR hard to speed up.
func runPthor(nproc int, m *coherence.Machine, sz Size) mpsim.Result {
	nGates := sz.PthorGates
	steps := sz.PthorSteps

	type gate struct {
		in0, in1 int
		kind     int // 0 NAND, 1 NOR, 2 XOR
		val      bool
	}
	gates := make([]gate, nGates)
	rng := uint64(0x2545F4914F6CDD1D)
	next := func(mod int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(mod))
	}
	const cluster = 32
	for i := range gates {
		// Mostly local fanin; ~12% long wires.
		base := i / cluster * cluster
		in0 := base + next(cluster)
		in1 := base + next(cluster)
		if next(8) == 0 {
			in0 = next(nGates)
		}
		if next(8) == 0 {
			in1 = next(nGates)
		}
		gates[i] = gate{in0: in0, in1: in1, kind: next(3), val: next(2) == 0}
	}
	// Gate 0 is the clock: it toggles every step and drives activity.
	gates[0].val = false

	// Gate records are 64 B (state + value + fanin list): two blocks.
	gateArr := array{base: pthorBase, elem: 64}
	// Published output values live in their own word array so readers
	// touch a single block per input.
	valArr := array{base: pthorBase + auxOffset, elem: 8}

	perProc := (nGates + nproc - 1) / nproc
	for pid := 0; pid < nproc; pid++ {
		lo := pid * perProc
		if lo >= nGates {
			break
		}
		m.Place(gateArr.at(lo), uint64(perProc)*64, pid)
		m.Place(valArr.at(lo), uint64(perProc)*8, pid)
	}

	changed := make([]bool, nGates)
	nextChanged := make([]bool, nGates)
	for i := range changed {
		changed[i] = true // evaluate everything in the first step
	}

	eval := func(g *gate, a, b bool) bool {
		switch g.kind {
		case 0:
			return !(a && b)
		case 1:
			return !(a || b)
		default:
			return a != b
		}
	}

	body := func(p *mpsim.Proc) {
		lo := p.ID * perProc
		hi := min(lo+perProc, nGates)
		for s := 0; s < steps; s++ {
			if p.ID == 0 {
				// Toggle the clock gate.
				gateArr.readElems(p, 0, 1)
				gates[0].val = !gates[0].val
				valArr.writeElems(p, 0, 1)
				nextChanged[0] = true
			}
			for i := lo; i < hi; i++ {
				g := &gates[i]
				if !changed[g.in0] && !changed[g.in1] {
					continue // inputs quiet: no evaluation this step
				}
				gateArr.readElems(p, i, 1)    // own gate record
				valArr.readElems(p, g.in0, 1) // input values
				valArr.readElems(p, g.in1, 1)
				nv := eval(g, gates[g.in0].val, gates[g.in1].val)
				p.Compute(4)
				if nv != g.val {
					g.val = nv
					nextChanged[i] = true
					valArr.writeElems(p, i, 1)  // publish
					gateArr.writeElems(p, i, 1) // update state
				}
			}
			p.Barrier()
			// Swap activity lists (proc 0, then everyone syncs).
			if p.ID == 0 {
				copy(changed, nextChanged)
				for i := range nextChanged {
					nextChanged[i] = false
				}
			}
			p.Barrier()
		}
	}
	return mpsim.Run(nproc, m, m.Lat.SyncCosts(), body)
}
