// Package splash implements the five SPLASH benchmarks of Table 5 as
// execution-driven parallel workloads for internal/mpsim: LU, MP3D,
// OCEAN, WATER, and PTHOR. The computations are real (the Go code
// computes actual decompositions, particle moves, grid relaxations,
// force sums, and gate evaluations); every shared-data reference is
// issued to the architecture model at coherence-block granularity, and
// data is placed on the node that owns the corresponding partition,
// as the paper's CacheMire-based simulations arrange.
//
// SPLASH itself is a Stanford source distribution we cannot ship;
// these kernels follow the published algorithm structure and the data
// set sizes of Table 5 (Size.Full), with a reduced Size.Quick for
// tests and benchmarks. Only data references are simulated, matching
// the paper: "instruction fetches are assumed to always hit in the
// instruction caches".
package splash

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/mpsim"
)

// Size selects the data-set scale.
type Size struct {
	LUMatrix                   int // n for the n×n LU decomposition
	OceanN, OceanIters         int // grid edge; relaxation sweeps
	MP3DParticles, MP3DSteps   int
	WaterMolecules, WaterSteps int
	PthorGates, PthorSteps     int
}

// Full is the paper's Table 5 data set (OceanIters stands in for the
// 1e-7 convergence tolerance: per-sweep cost is what the architecture
// comparison measures, so a fixed sweep count preserves the shape).
func Full() Size {
	return Size{
		LUMatrix: 200,
		OceanN:   128, OceanIters: 30,
		MP3DParticles: 10000, MP3DSteps: 10,
		WaterMolecules: 288, WaterSteps: 4,
		PthorGates: 2048, PthorSteps: 500,
	}
}

// Quick is a scaled-down data set for tests and Go benchmarks.
func Quick() Size {
	return Size{
		LUMatrix: 64,
		OceanN:   32, OceanIters: 8,
		MP3DParticles: 1024, MP3DSteps: 4,
		WaterMolecules: 64, WaterSteps: 2,
		PthorGates: 256, PthorSteps: 60,
	}
}

// Benchmark is one SPLASH application.
type Benchmark struct {
	Name        string
	Description string
	DataSet     string
	// kernel executes the benchmark on n processors over the machine.
	kernel func(n int, m *coherence.Machine, sz Size) mpsim.Result
}

// Run executes the benchmark on n processors over a fresh machine of
// the given configuration with the paper's 32 B coherence unit.
func (b Benchmark) Run(n int, cfg coherence.Config, sz Size) mpsim.Result {
	return b.kernel(n, coherence.NewConfiguredMachine(cfg, n), sz)
}

// RunDevices executes the benchmark over machines derived from an
// explicit device pair (the -machine path): prop describes the
// integrated node, ref the conventional CC-NUMA node.
func (b Benchmark) RunDevices(n int, cfg coherence.Config, sz Size, prop, ref core.Device) mpsim.Result {
	unit := uint64(prop.CoherenceUnitBytes)
	return b.kernel(n, coherence.NewConfiguredMachineDevices(cfg, n, unit, prop, ref), sz)
}

// RunMachine executes the benchmark over a caller-supplied machine
// (custom latencies, INC organisation, ...).
func (b Benchmark) RunMachine(n int, m *coherence.Machine, sz Size) mpsim.Result {
	return b.kernel(n, m, sz)
}

// RunUnit executes the benchmark with a custom coherence unit — the
// false-sharing ablation: the paper warns that using the 512 B cache
// lines as coherence units would make "the false-sharing costs ...
// outweigh the prefetching benefits" (Section 6.2).
func (b Benchmark) RunUnit(n int, cfg coherence.Config, sz Size, unit uint64) mpsim.Result {
	return b.kernel(n, coherence.NewConfiguredMachineUnit(cfg, n, unit), sz)
}

// All returns the five benchmarks in the paper's figure order
// (Figures 13–17).
func All() []Benchmark {
	return []Benchmark{
		{
			Name:        "LU",
			Description: "LU decomposition",
			DataSet:     "200x200 matrix",
			kernel:      runLU,
		},
		{
			Name:        "MP3D",
			Description: "3-D particle-based wind-tunnel simulator",
			DataSet:     "10 K particles, 10 steps",
			kernel:      runMP3D,
		},
		{
			Name:        "OCEAN",
			Description: "Ocean basin simulator",
			DataSet:     "128x128 grids",
			kernel:      runOcean,
		},
		{
			Name:        "WATER",
			Description: "N-body water molecular dynamics simulation",
			DataSet:     "288 molecules, 4 time steps",
			kernel:      runWater,
		},
		{
			Name:        "PTHOR",
			Description: "Distributed-time digital circuit simulator",
			DataSet:     "RISC-like circuit",
			kernel:      runPthor,
		},
	}
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("splash: unknown benchmark %q", name)
}

// array maps indices of a shared Go-side slice to simulated addresses.
type array struct {
	base uint64
	elem uint64
}

func (a array) at(i int) uint64 { return a.base + uint64(i)*a.elem }

// readElems issues block-granular reads covering count elements
// starting at index i (one simulated access per 32 B coherence block).
func (a array) readElems(p *mpsim.Proc, i, count int) {
	start := a.at(i) / coherence.BlockSize
	end := (a.at(i+count-1) + a.elem - 1) / coherence.BlockSize
	for b := start; b <= end; b++ {
		p.Read(b * coherence.BlockSize)
	}
}

// writeElems issues block-granular writes covering count elements.
func (a array) writeElems(p *mpsim.Proc, i, count int) {
	start := a.at(i) / coherence.BlockSize
	end := (a.at(i+count-1) + a.elem - 1) / coherence.BlockSize
	for b := start; b <= end; b++ {
		p.Write(b * coherence.BlockSize)
	}
}

// Shared-address-space layout: each benchmark's arrays sit in disjoint
// gigabyte-aligned regions so placements never collide.
const (
	luBase    = 0x1_0000_0000
	oceanBase = 0x2_0000_0000
	mp3dBase  = 0x3_0000_0000
	waterBase = 0x4_0000_0000
	pthorBase = 0x5_0000_0000
	auxOffset = 0x0_4000_0000 // secondary arrays within a region
)
