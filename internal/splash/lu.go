package splash

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/mpsim"
)

// runLU performs a right-looking dense LU decomposition without
// pivoting on an n×n matrix stored column-major, with columns assigned
// block-cyclically to processors (block = one 4 KB page worth of
// columns) and placed on the owning node. Column k is normalised by
// its owner, then all processors update their own trailing columns
// using it — the classic SPLASH LU structure: the pivot column is the
// shared (read-mostly) data, trailing updates are local.
func runLU(nproc int, m *coherence.Machine, sz Size) mpsim.Result {
	n := sz.LUMatrix

	// Matrix data (column-major): a[j*n+i] = A[i][j].
	a := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			a[j*n+i] = 1.0 / float64(i+j+1)
			if i == j {
				a[j*n+i] += float64(n) // diagonally dominant
			}
		}
	}

	colBytes := uint64(n * 8)
	mat := array{base: luBase, elem: 8}

	// Columns per page and block-cyclic ownership matching placement.
	colsPerPage := int(coherence.PageSize / colBytes)
	if colsPerPage == 0 {
		colsPerPage = 1
	}
	owner := func(j int) int { return (j / colsPerPage) % nproc }
	for j := 0; j < n; j += colsPerPage {
		end := uint64(j+colsPerPage) * colBytes
		if end > uint64(n)*colBytes {
			end = uint64(n) * colBytes
		}
		m.Place(luBase+uint64(j)*colBytes, end-uint64(j)*colBytes, owner(j))
	}

	// Per-processor pivot scratch buffers, placed locally. SPLASH LU
	// copies the pivot column into local storage once per step and
	// reuses the copy for every owned trailing column — the remote
	// traffic is one fetch of the column per processor per step, and
	// the inner update streams purely local data (where the 512 B
	// column-buffer fills shine).
	scratch := array{base: luBase + auxOffset, elem: 8}
	scratchStride := (uint64(n)*8/coherence.PageSize + 1) * coherence.PageSize
	for pid := 0; pid < nproc; pid++ {
		m.Place(scratch.at(0)+uint64(pid)*scratchStride, scratchStride, pid)
	}

	body := func(p *mpsim.Proc) {
		myScratchBase := int(uint64(p.ID) * scratchStride / 8)
		for k := 0; k < n; k++ {
			if owner(k) == p.ID {
				// Normalise column k below the diagonal.
				mat.readElems(p, k*n+k, 1)
				piv := a[k*n+k]
				for i := k + 1; i < n; i += 4 {
					cnt := min(4, n-i)
					mat.readElems(p, k*n+i, cnt)
					for t := i; t < i+cnt; t++ {
						a[k*n+t] /= piv
					}
					mat.writeElems(p, k*n+i, cnt)
					p.Compute(uint64(2 * cnt))
				}
			}
			p.Barrier()
			// Copy the pivot column into local scratch (one pass).
			hasWork := false
			for j := k + 1; j < n; j++ {
				if owner(j) == p.ID {
					hasWork = true
					break
				}
			}
			if hasWork {
				for i := k + 1; i < n; i += 4 {
					cnt := min(4, n-i)
					mat.readElems(p, k*n+i, cnt) // shared pivot column
					scratch.writeElems(p, myScratchBase+i, cnt)
					p.Compute(uint64(cnt))
				}
			}
			// Update trailing columns this processor owns from the
			// local copy.
			for j := k + 1; j < n; j++ {
				if owner(j) != p.ID {
					continue
				}
				mat.readElems(p, j*n+k, 1) // A[k][j] (column-major)
				akj := a[j*n+k]
				for i := k + 1; i < n; i += 4 {
					cnt := min(4, n-i)
					scratch.readElems(p, myScratchBase+i, cnt) // local pivot copy
					mat.readElems(p, j*n+i, cnt)               // own column
					for t := i; t < i+cnt; t++ {
						a[j*n+t] -= a[k*n+t] * akj
					}
					mat.writeElems(p, j*n+i, cnt)
					p.Compute(uint64(2 * cnt))
				}
			}
			p.Barrier()
		}
	}
	// Keep a copy so the factorisation can be verified below.
	orig := make([]float64, len(a))
	copy(orig, a)

	res := mpsim.Run(nproc, m, m.Lat.SyncCosts(), body)

	// Execution-driven means the computation is real: for small data
	// sets (tests), verify that L·U reconstructs the original matrix.
	// Skipped at full scale only to keep experiment runs fast.
	if n <= 64 {
		if err := verifyLU(orig, a, n); err != nil {
			panic("splash: LU kernel produced a wrong factorisation: " + err.Error())
		}
	}
	return res
}

// verifyLU checks max|L·U - A| by materialising L (unit lower) and U
// from the column-major factored matrix.
func verifyLU(orig, lu []float64, n int) error {
	var worst float64
	L := make([]float64, n*n)
	U := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			v := lu[j*n+i] // column-major element A'[i][j]
			switch {
			case i == j:
				L[i*n+j] = 1
				U[i*n+j] = v
			case i > j:
				L[i*n+j] = v
			default:
				U[i*n+j] = v
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for k := 0; k < n; k++ {
				sum += L[i*n+k] * U[k*n+j]
			}
			diff := sum - orig[j*n+i]
			if diff < 0 {
				diff = -diff
			}
			if diff > worst {
				worst = diff
			}
		}
	}
	if worst > 1e-6 {
		return fmt.Errorf("max residual %g", worst)
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
