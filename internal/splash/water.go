package splash

import (
	"repro/internal/coherence"
	"repro/internal/mpsim"
)

// waterMolBytes is the size of one molecule record. The paper calls
// this out explicitly: "each molecule is described by a data structure
// of approximately 600 Bytes, and is only partially accessed" — which
// is why the 512 B column buffers fare poorly on WATER until the
// victim cache absorbs the conflicts.
const waterMolBytes = 640 // 80 float64 fields, ~600 B as in the paper

// runWater computes the O(n²) intermolecular force phase and the O(n)
// position-update phase of the SPLASH WATER molecular dynamics code.
// Molecules are statically assigned to processors (as in SPLASH);
// every processor reads part of every other molecule's record each
// step, so true sharing dominates.
func runWater(nproc int, m *coherence.Machine, sz Size) mpsim.Result {
	nMol := sz.WaterMolecules
	steps := sz.WaterSteps

	type molecule struct {
		pos   [3]float64
		vel   [3]float64
		force [3]float64
	}
	mols := make([]molecule, nMol)
	for i := range mols {
		mols[i] = molecule{
			pos: [3]float64{float64(i) * 1.7, float64(i%13) * 0.9, float64(i%7) * 1.1},
			vel: [3]float64{0.01, -0.02, 0.005},
		}
	}
	molArr := array{base: waterBase, elem: waterMolBytes}

	perProc := (nMol + nproc - 1) / nproc
	for pid := 0; pid < nproc; pid++ {
		lo := pid * perProc
		if lo >= nMol {
			break
		}
		m.Place(molArr.at(lo), uint64(perProc)*waterMolBytes, pid)
	}

	body := func(p *mpsim.Proc) {
		lo := p.ID * perProc
		hi := min(lo+perProc, nMol)
		for s := 0; s < steps; s++ {
			// Force phase: each of my molecules interacts with every
			// other molecule. A water molecule has three atoms, so each
			// pair interaction evaluates nine atom-pair terms in two
			// passes (distances, then forces), re-reading the partner's
			// three position blocks repeatedly — the "partially
			// accessed ~600 B structure" access pattern the paper
			// describes. The repeated short-window re-reads are what
			// the victim cache's remote-data staging absorbs.
			for i := lo; i < hi; i++ {
				mi := &mols[i]
				for j := 0; j < nMol; j++ {
					if j == i {
						continue
					}
					var acc [3]float64
					for pass := 0; pass < 2; pass++ {
						for atom := 0; atom < 3; atom++ {
							p.Read(molArr.at(j) + uint64(atom)*coherence.BlockSize)
							d := mi.pos[atom] - mols[j].pos[atom]
							acc[atom] = d
							p.Compute(4)
						}
					}
					r2 := acc[0]*acc[0] + acc[1]*acc[1] + acc[2]*acc[2] + 1
					f := 1 / r2
					for d := 0; d < 3; d++ {
						mi.force[d] += f * acc[d]
					}
					p.Compute(8)
				}
				// Write my molecule's force fields (third 32 B block).
				p.Write(molArr.at(i) + 2*coherence.BlockSize)
			}
			p.Barrier()
			// Update phase: integrate my molecules (read-modify-write
			// the kinematic blocks).
			for i := lo; i < hi; i++ {
				mi := &mols[i]
				p.Read(molArr.at(i))
				p.Read(molArr.at(i) + coherence.BlockSize)
				for d := 0; d < 3; d++ {
					mi.vel[d] += 0.001 * mi.force[d]
					mi.pos[d] += mi.vel[d]
					mi.force[d] = 0
				}
				p.Compute(9)
				p.Write(molArr.at(i))
				p.Write(molArr.at(i) + coherence.BlockSize)
			}
			p.Barrier()
		}
	}
	return mpsim.Run(nproc, m, m.Lat.SyncCosts(), body)
}
