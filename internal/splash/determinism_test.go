package splash

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/coherence"
	"repro/internal/mpsim"
)

// TestRunDeterministicAcrossGOMAXPROCS enforces the goroutine-
// scheduling independence the mpsim package doc promises, directly on
// the real workloads: every SPLASH kernel must return an identical
// mpsim.Result for the same inputs across repeated runs and across
// GOMAXPROCS 1 vs N (previously this was only enforced indirectly via
// stdout diffs of the sweep engine).
func TestRunDeterministicAcrossGOMAXPROCS(t *testing.T) {
	const procs = 4
	sz := Quick()
	// Coord's wake-delivery accounting varies with host scheduling by
	// design; everything else in the Result must be bit-exact.
	run := func(b Benchmark) mpsim.Result {
		r := b.Run(procs, coherence.IntegratedVictim, sz)
		r.Coord = r.Coord.Deterministic()
		return r
	}
	for _, b := range All() {
		t.Run(b.Name, func(t *testing.T) {
			ref := run(b)

			repeat := run(b)
			if !reflect.DeepEqual(ref, repeat) {
				t.Fatalf("repeated run differs:\n  first  %+v\n  second %+v", ref, repeat)
			}

			old := runtime.GOMAXPROCS(1)
			serial := run(b)
			runtime.GOMAXPROCS(old)
			if !reflect.DeepEqual(ref, serial) {
				t.Fatalf("GOMAXPROCS=1 run differs from GOMAXPROCS=%d:\n  parallel %+v\n  serial   %+v",
					old, ref, serial)
			}
		})
	}
}
