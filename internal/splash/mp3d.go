package splash

import (
	"repro/internal/coherence"
	"repro/internal/mpsim"
)

// runMP3D simulates the SPLASH wind-tunnel code's communication
// structure: particles are statically partitioned (64 B records placed
// with their owner); each step every particle moves through a shared
// 3-D space array whose cells count occupancy and mediate collisions.
// The space cells are written by whichever processor's particle lands
// there, producing the heavy invalidation traffic that makes MP3D the
// classic coherence stress test.
func runMP3D(nproc int, m *coherence.Machine, sz Size) mpsim.Result {
	nPart := sz.MP3DParticles
	steps := sz.MP3DSteps
	const dim = 16 // 16^3 space cells
	nCells := dim * dim * dim

	// Particle state: position (3) + velocity (3) + padding = 64 B.
	type particle struct {
		x, y, z    float64
		vx, vy, vz float64
	}
	parts := make([]particle, nPart)
	for i := range parts {
		parts[i] = particle{
			x:  float64(i%dim) + 0.3,
			y:  float64((i/dim)%dim) + 0.6,
			z:  float64((i/dim/dim)%dim) + 0.1,
			vx: float64(i%7-3) * 0.29,
			vy: float64(i%5-2) * 0.41,
			vz: float64(i%3-1) * 0.53,
		}
	}
	cells := make([]int64, nCells)

	partArr := array{base: mp3dBase, elem: 64}
	cellArr := array{base: mp3dBase + auxOffset, elem: 8}

	perProc := (nPart + nproc - 1) / nproc
	for pid := 0; pid < nproc; pid++ {
		lo := pid * perProc
		if lo >= nPart {
			break
		}
		m.Place(partArr.at(lo), uint64(perProc)*64, pid)
	}
	// Space cells stay page-interleaved (they belong to no processor).

	wrap := func(v float64) float64 {
		for v < 0 {
			v += dim
		}
		for v >= dim {
			v -= dim
		}
		return v
	}

	body := func(p *mpsim.Proc) {
		lo := p.ID * perProc
		hi := min(lo+perProc, nPart)
		for s := 0; s < steps; s++ {
			for i := lo; i < hi; i++ {
				// Read and advance the particle (two 32 B blocks).
				partArr.readElems(p, i, 1)
				pt := &parts[i]
				pt.x = wrap(pt.x + pt.vx)
				pt.y = wrap(pt.y + pt.vy)
				pt.z = wrap(pt.z + pt.vz)
				p.Compute(6)
				partArr.writeElems(p, i, 1)

				// Collide through the shared space cell.
				cell := int(pt.x) + dim*int(pt.y) + dim*dim*int(pt.z)
				cellArr.readElems(p, cell, 1)
				cells[cell]++ // benign counter; ownership serialised below
				p.Compute(2)
				cellArr.writeElems(p, cell, 1)
				if cells[cell]%7 == 0 {
					// Collision: perturb velocity deterministically.
					pt.vx, pt.vy = pt.vy, -pt.vx
				}
			}
			p.Barrier()
		}
	}
	// cells is incremented by whichever processor's particle lands in a
	// cell. This is safe without extra locking: mpsim serialises worker
	// compute sections (exactly one body goroutine runs between
	// coordinator handoffs), so host-side updates are totally ordered
	// even though the *simulated* accesses contend and invalidate.
	return mpsim.Run(nproc, m, m.Lat.SyncCosts(), body)
}
