package splash

import (
	"math"

	"repro/internal/coherence"
	"repro/internal/mpsim"
)

// runOcean performs red-black Gauss-Seidel relaxation on an n×n grid,
// the communication core of the SPLASH Ocean basin simulator. Rows are
// partitioned contiguously among processors and placed on the owning
// node; each sweep reads the four neighbours of every updated point,
// so partition-boundary rows are the shared data. A residual reduction
// under a lock models the convergence test of the original code.
func runOcean(nproc int, m *coherence.Machine, sz Size) mpsim.Result {
	n := sz.OceanN
	iters := sz.OceanIters

	grid := make([]float64, n*n)
	for i := range grid {
		grid[i] = float64(i%17) * 0.25
	}
	g := array{base: oceanBase, elem: 8}
	residual := array{base: oceanBase + auxOffset, elem: 8}
	resVal := 0.0

	rowBytes := uint64(n * 8)
	rowsPerProc := (n + nproc - 1) / nproc
	for pid := 0; pid < nproc; pid++ {
		lo := pid * rowsPerProc
		if lo >= n {
			break
		}
		m.Place(oceanBase+uint64(lo)*rowBytes, uint64(rowsPerProc)*rowBytes, pid)
	}
	m.Place(residual.at(0), 64, 0)

	body := func(p *mpsim.Proc) {
		lo := p.ID * rowsPerProc
		hi := min(lo+rowsPerProc, n)
		if lo == 0 {
			lo = 1 // boundary rows fixed
		}
		if hi == n {
			hi = n - 1
		}
		for it := 0; it < iters; it++ {
			local := 0.0
			for colour := 0; colour < 2; colour++ {
				for i := lo; i < hi; i++ {
					for j0 := 1; j0 < n-1; j0 += 4 {
						cnt := min(4, n-1-j0)
						// Block-granular stencil reads: own row plus
						// the rows above and below.
						g.readElems(p, i*n+j0, cnt)
						g.readElems(p, (i-1)*n+j0, cnt)
						g.readElems(p, (i+1)*n+j0, cnt)
						for j := j0; j < j0+cnt; j++ {
							if (i+j)%2 != colour {
								continue
							}
							old := grid[i*n+j]
							nv := 0.25 * (grid[(i-1)*n+j] + grid[(i+1)*n+j] +
								grid[i*n+j-1] + grid[i*n+j+1])
							grid[i*n+j] = nv
							local += math.Abs(nv - old)
						}
						g.writeElems(p, i*n+j0, cnt)
						p.Compute(uint64(3 * cnt))
					}
				}
				p.Barrier()
			}
			// Convergence reduction under a lock.
			p.Lock(0)
			residual.readElems(p, 0, 1)
			resVal += local
			residual.writeElems(p, 0, 1)
			p.Unlock(0)
			p.Barrier()
		}
	}
	res := mpsim.Run(nproc, m, m.Lat.SyncCosts(), body)
	_ = resVal
	return res
}
