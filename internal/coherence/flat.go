package coherence

// Flat per-reference state. The SPLASH address spaces are a handful of
// contiguous regions (internal/splash lays every array in a
// gigabyte-aligned window), so the directory, page-placement, and
// per-node block-validity state that used to live in Go maps is kept
// in sparse paged arrays instead: a lookup is two slice indexings and
// a mask, and steady-state accesses never allocate or hash. Chunks are
// allocated lazily the first time an index inside them is touched, so
// the tables cost memory proportional to the address span actually
// used, not to the 40-bit simulated address space.

const (
	// dirChunkShift: 128 Ki directory entries (2 MB) per chunk,
	// covering 4 MB of address space at the 32 B coherence unit.
	dirChunkShift = 17
	dirChunkMask  = 1<<dirChunkShift - 1

	// bitsChunkShift: 1 Mi bits (128 KB) per chunk.
	bitsChunkShift = 20
	bitsChunkMask  = 1<<bitsChunkShift - 1

	// homeChunkShift: 16 Ki page entries (32 KB) per chunk, covering
	// 64 MB of address space at the 4 KB page size.
	homeChunkShift = 14
	homeChunkMask  = 1<<homeChunkShift - 1
)

// dirTable is the home directory as a sparse paged array of dirEntry,
// indexed by block number. The zero entry is dirHome with no sharers —
// exactly the state of a never-referenced block.
type dirTable struct {
	chunks [][]dirEntry
}

// entry returns the directory entry for the block, allocating its
// chunk on first touch.
func (t *dirTable) entry(block uint64) *dirEntry {
	ci := block >> dirChunkShift
	for uint64(len(t.chunks)) <= ci {
		t.chunks = append(t.chunks, nil)
	}
	c := t.chunks[ci]
	if c == nil {
		c = make([]dirEntry, 1<<dirChunkShift)
		t.chunks[ci] = c
	}
	return &c[block&dirChunkMask]
}

// pagedBits is a sparse bitset over uint64 indices (block or page
// numbers). get on an untouched chunk is false without allocating.
type pagedBits struct {
	chunks [][]uint64
}

func (b *pagedBits) get(i uint64) bool {
	ci := i >> bitsChunkShift
	if ci >= uint64(len(b.chunks)) {
		return false
	}
	c := b.chunks[ci]
	if c == nil {
		return false
	}
	w := i & bitsChunkMask
	return c[w>>6]&(1<<(w&63)) != 0
}

func (b *pagedBits) set(i uint64) {
	ci := i >> bitsChunkShift
	for uint64(len(b.chunks)) <= ci {
		b.chunks = append(b.chunks, nil)
	}
	c := b.chunks[ci]
	if c == nil {
		c = make([]uint64, 1<<(bitsChunkShift-6))
		b.chunks[ci] = c
	}
	w := i & bitsChunkMask
	c[w>>6] |= 1 << (w & 63)
}

func (b *pagedBits) clear(i uint64) {
	ci := i >> bitsChunkShift
	if ci >= uint64(len(b.chunks)) {
		return
	}
	c := b.chunks[ci]
	if c == nil {
		return
	}
	w := i & bitsChunkMask
	c[w>>6] &^= 1 << (w & 63)
}

// homeTable is the explicit page-placement table (page number -> node),
// stored as node+1 in int16 chunks so the zero value means "unplaced".
type homeTable struct {
	chunks [][]int16
}

// get returns the placed node for the page, or ok=false when the page
// falls back to the default interleaving.
func (h *homeTable) get(page uint64) (int, bool) {
	ci := page >> homeChunkShift
	if ci >= uint64(len(h.chunks)) {
		return 0, false
	}
	c := h.chunks[ci]
	if c == nil {
		return 0, false
	}
	v := c[page&homeChunkMask]
	if v == 0 {
		return 0, false
	}
	return int(v - 1), true
}

func (h *homeTable) set(page uint64, node int) {
	ci := page >> homeChunkShift
	for uint64(len(h.chunks)) <= ci {
		h.chunks = append(h.chunks, nil)
	}
	c := h.chunks[ci]
	if c == nil {
		c = make([]int16, 1<<homeChunkShift)
		h.chunks[ci] = c
	}
	c[page&homeChunkMask] = int16(node + 1)
}
