package coherence

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
)

// Simple-COMA support. Section 4.2 of the paper states that the
// protocol engines' downloadable microcode supports both CC-NUMA and
// Simple-COMA shared memory; the multiprocessor evaluation (Section 6)
// uses only the CC-NUMA mode, so this file is the reproduction's
// implementation of the *other* mode, following the cited design
// (Saulsbury et al., "An Argument for Simple COMA", HPCA'95):
//
//   - local memory acts as a page-granularity attraction memory: the
//     first touch of a remote page allocates a local frame (a software
//     trap, charged PageAllocCycles);
//
//   - within an allocated frame, data is fetched and kept coherent at
//     the usual 32 B block granularity, but once fetched it lives in
//     *local* DRAM — so re-accesses enjoy the full column-buffer path
//     (1-cycle hits, 512 B fills) instead of the INC's array access.
//
// The trade against CC-NUMA: S-COMA converts remote re-access latency
// into local latency at the price of page-allocation traps and memory
// consumption (frames are never reclaimed in this model, matching the
// paper-scale working sets).

// PageAllocCycles is the software page-allocation cost charged on the
// first touch of a remote page (an OS trap plus page-table work).
const PageAllocCycles = 150

// SCOMANode is a Simple-COMA processing element: the same column
// buffers and victim cache as the integrated node, with an attraction
// memory replacing the INC.
type SCOMANode struct {
	id         int
	lat        Latencies
	unit       uint64
	line       uint64 // column (cache line) size
	victimLine uint64 // victim cache entry size
	dcache     *cache.SetAssoc
	victim     *cache.Victim

	frames   pagedBits // allocated local frames for remote pages
	valid    pagedBits // fetched remote blocks
	poisoned pagedBits // per-block invalidation inside resident columns

	// Allocations counts page-frame allocations (for reports).
	Allocations int64
}

// NewSCOMANode builds a Simple-COMA node with the paper's organisation.
func NewSCOMANode(id int, lat Latencies, withVictim bool) *SCOMANode {
	return NewSCOMANodeDevice(id, lat, withVictim, core.Proposed())
}

// NewSCOMANodeDevice builds a Simple-COMA node whose column buffers and
// victim cache are derived from a machine description.
func NewSCOMANodeDevice(id int, lat Latencies, withVictim bool, d core.Device) *SCOMANode {
	n := &SCOMANode{
		id:         id,
		lat:        lat,
		unit:       uint64(d.CoherenceUnitBytes),
		line:       uint64(d.DRAM.ColumnBytes),
		victimLine: uint64(d.VictimLineBytes),
		dcache: cache.NewSetAssoc(
			fmt.Sprintf("%dKB %d-way %dB device D-cache", d.DCacheBytes>>10, d.DCacheWays, d.DCacheLineBytes),
			uint64(d.DCacheBytes), uint64(d.DCacheLineBytes), d.DCacheWays),
	}
	if withVictim && d.VictimEntries > 0 {
		n.victim = cache.NewVictim(d.VictimEntries, uint64(d.VictimLineBytes))
	}
	return n
}

// Access implements Node.
func (n *SCOMANode) Access(addr uint64, write, local bool) (uint64, bool) {
	block := addr / n.unit
	kind := kindOf(write)

	var alloc uint64
	if !local {
		page := addr / PageSize
		if !n.frames.get(page) {
			n.frames.set(page)
			n.Allocations++
			alloc = PageAllocCycles
		}
		if !n.valid.get(block) || n.poisoned.get(block) {
			// Block-grain fetch into the attraction memory; the caller
			// charges the remote round trip.
			n.valid.set(block)
			n.poisoned.clear(block)
			// The fetched block lands in local DRAM; prime the column
			// buffer path like a local fill.
			n.localFill(addr, kind)
			return alloc, true
		}
	}
	// Local data, or a remote block already resident in the attraction
	// memory: the ordinary column-buffer path.
	if n.dcache.Probe(addr) && !n.poisoned.get(block) {
		n.dcache.Access(addr, kind)
		return alloc + n.lat.CacheHit, false
	}
	if n.victim != nil && n.victim.Lookup(addr) && !n.poisoned.get(block) {
		return alloc + n.lat.VictimHit, false
	}
	n.localFill(addr, kind)
	return alloc + n.lat.LocalMem, false
}

func (n *SCOMANode) localFill(addr uint64, kind kindT) {
	if n.victim != nil {
		n.dcache.OnEvict = func(e cache.Eviction) {
			sub := e.Addr + uint64(e.LastSub)/n.victimLine*n.victimLine
			n.victim.Insert(sub)
		}
	}
	n.dcache.Access(addr, kind)
	lineBase := addr / n.line * n.line
	for b := lineBase / n.unit; b <= (lineBase+n.line-1)/n.unit; b++ {
		// A column fill validates only what the attraction memory
		// actually holds; poisoned (invalidated) blocks stay poisoned
		// until re-fetched, so clear poison only here for blocks that
		// are valid local copies.
		if n.valid.get(b) {
			n.poisoned.clear(b)
		}
	}
}

// Invalidate implements Node.
func (n *SCOMANode) Invalidate(base, size uint64) {
	block := base / n.unit
	n.valid.clear(block)
	if n.dcache.Probe(base) {
		n.poisoned.set(block)
	}
	if n.victim != nil {
		for a := base; a < base+size; a += n.victimLine {
			n.victim.Invalidate(a)
		}
	}
}

// kindT aliases the trace kind used by the cache package.
type kindT = cacheKind

// SimpleCOMA is the additional machine configuration (the paper's
// second protocol-engine personality).
const SimpleCOMA Config = 3

// NewSCOMAMachine builds an n-node Simple-COMA machine with the
// integrated node's cache organisation (victim cache included, as in
// the best-performing CC-NUMA variant).
func NewSCOMAMachine(n int) *Machine {
	return NewSCOMAMachineDevice(n, core.Proposed())
}

// NewSCOMAMachineDevice builds an n-node Simple-COMA machine derived
// from a machine description.
func NewSCOMAMachineDevice(n int, d core.Device) *Machine {
	lat := LatenciesFor(d)
	return NewMachine(n, lat, func(id int) Node {
		return NewSCOMANodeDevice(id, lat, true, d)
	})
}
