package coherence

import "testing"

func TestPagedBits(t *testing.T) {
	var b pagedBits
	// Sparse indices across distinct chunks, including the SPLASH
	// block-number range (gigabyte-aligned regions / 32 B units).
	idx := []uint64{0, 1, 63, 64, bitsChunkMask, 1 << bitsChunkShift,
		0x1_0000_0000 / 32, 0x5_4000_0000 / 32}
	for _, i := range idx {
		if b.get(i) {
			t.Fatalf("bit %d set before any set()", i)
		}
		b.clear(i) // clear on an untouched chunk must be a no-op
		b.set(i)
		if !b.get(i) {
			t.Fatalf("bit %d not set after set()", i)
		}
	}
	for _, i := range idx {
		b.clear(i)
		if b.get(i) {
			t.Fatalf("bit %d still set after clear()", i)
		}
	}
	// Neighbours of a set bit stay clear.
	b.set(1000)
	if b.get(999) || b.get(1001) {
		t.Error("set(1000) leaked into neighbouring bits")
	}
}

func TestHomeTableUnsetAndOverwrite(t *testing.T) {
	var h homeTable
	if _, ok := h.get(42); ok {
		t.Error("empty table claims a placement")
	}
	h.set(42, 0) // node 0 must be distinguishable from "unset"
	if n, ok := h.get(42); !ok || n != 0 {
		t.Errorf("get(42) = %d,%v, want 0,true", n, ok)
	}
	h.set(42, 3)
	if n, _ := h.get(42); n != 3 {
		t.Errorf("overwrite lost: got %d, want 3", n)
	}
	if _, ok := h.get(43); ok {
		t.Error("placement leaked to a neighbouring page")
	}
	// A page far into the SPLASH address range (sparse chunk).
	far := uint64(0x5_0000_0000) / PageSize
	h.set(far, 7)
	if n, ok := h.get(far); !ok || n != 7 {
		t.Errorf("sparse page = %d,%v, want 7,true", n, ok)
	}
}

func TestDirTableZeroValueIsHomeState(t *testing.T) {
	var d dirTable
	e := d.entry(12345)
	if e.state != dirHome || e.sharers != 0 || e.owner != 0 {
		t.Errorf("fresh entry = %+v, want zero dirHome", *e)
	}
	e.state = dirDirty
	e.owner = 3
	if again := d.entry(12345); again.state != dirDirty || again.owner != 3 {
		t.Error("entry is not stable storage")
	}
	// A distinct block in the same chunk is independent.
	if d.entry(12346).state != dirHome {
		t.Error("neighbouring entry contaminated")
	}
	// Sparse far entry allocates its own chunk.
	if d.entry(0x5_4000_0000/32).state != dirHome {
		t.Error("sparse entry not zero")
	}
}

func TestPagedStateNoSteadyStateAllocs(t *testing.T) {
	var b pagedBits
	var d dirTable
	b.set(100)
	d.entry(100)
	allocs := testing.AllocsPerRun(100, func() {
		b.set(101)
		b.get(101)
		b.clear(101)
		d.entry(101).sharers = 1
	})
	if allocs > 0 {
		t.Errorf("steady-state paged-table ops allocate %.1f per round, want 0", allocs)
	}
}
