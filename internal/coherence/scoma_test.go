package coherence

import "testing"

func TestSCOMAFirstTouchAllocates(t *testing.T) {
	m := NewSCOMAMachine(2)
	addr := uint64(PageSize) // home node 1, remote for node 0
	got := m.Access(0, addr, false)
	// First touch: page allocation + remote block fetch.
	want := uint64(PageAllocCycles) + m.Lat.RemoteLoad
	if got != want {
		t.Errorf("first touch = %d, want %d", got, want)
	}
	node := m.Nodes[0].(*SCOMANode)
	if node.Allocations != 1 {
		t.Errorf("allocations = %d, want 1", node.Allocations)
	}
}

func TestSCOMAReaccessIsLocalSpeed(t *testing.T) {
	m := NewSCOMAMachine(2)
	addr := uint64(PageSize)
	m.Access(0, addr, false) // alloc + fetch (also primes the column)
	// Re-access: column buffer hit — the whole point of S-COMA.
	if got := m.Access(0, addr, false); got != m.Lat.CacheHit {
		t.Errorf("re-access = %d, want column-buffer hit %d", got, m.Lat.CacheHit)
	}
}

func TestSCOMASecondBlockSamePageNoAlloc(t *testing.T) {
	m := NewSCOMAMachine(2)
	m.Access(0, PageSize, false)
	// Another block in the same page: fetch but no allocation trap.
	got := m.Access(0, PageSize+4*BlockSize, false)
	if got != m.Lat.RemoteLoad {
		t.Errorf("second block = %d, want plain remote load %d", got, m.Lat.RemoteLoad)
	}
}

func TestSCOMAInvalidationForcesRefetch(t *testing.T) {
	m := NewSCOMAMachine(2)
	addr := uint64(PageSize)
	m.Access(0, addr, false) // node 0 caches it
	m.Access(1, addr, true)  // home writes: node 0's copy invalidated
	got := m.Access(0, addr, false)
	if got < m.Lat.RemoteLoad {
		t.Errorf("read after invalidation = %d, want >= remote refetch", got)
	}
}

func TestSCOMALocalDataUnaffected(t *testing.T) {
	m := NewSCOMAMachine(2)
	if got := m.Access(0, 0, false); got != m.Lat.LocalMem {
		t.Errorf("local cold = %d, want %d", got, m.Lat.LocalMem)
	}
	if got := m.Access(0, 64, false); got != m.Lat.CacheHit {
		t.Errorf("local column hit = %d, want %d", got, m.Lat.CacheHit)
	}
	node := m.Nodes[0].(*SCOMANode)
	if node.Allocations != 0 {
		t.Error("local accesses must not allocate frames")
	}
}

func TestSCOMAConfigString(t *testing.T) {
	if SimpleCOMA.String() != "integrated S-COMA" {
		t.Errorf("got %q", SimpleCOMA.String())
	}
	m := NewConfiguredMachine(SimpleCOMA, 2)
	if len(m.Nodes) != 2 {
		t.Error("configured machine wrong")
	}
}

func TestEngineOccupancyQueues(t *testing.T) {
	m := NewConfiguredMachine(IntegratedVictim, 2)
	m.EnableEngines(1)
	// Two back-to-back remote fetches at the same instant: the second
	// must queue behind the first on the single home engine.
	l1 := m.AccessAt(0, PageSize, false, 1000)
	l2 := m.AccessAt(0, PageSize+64, false, 1000)
	if l2 <= l1 {
		t.Errorf("second transaction did not queue: %d vs %d", l2, l1)
	}
	q, n := m.EngineStats()
	if q == 0 || n < 2 {
		t.Errorf("engine stats: queue=%d transactions=%d", q, n)
	}
}

func TestEngineDisabledByDefault(t *testing.T) {
	m := NewConfiguredMachine(IntegratedVictim, 2)
	a := m.AccessAt(0, PageSize, false, 0)
	if a != m.Lat.RemoteLoad {
		t.Errorf("AccessAt without engines = %d, want plain %d", a, m.Lat.RemoteLoad)
	}
	if q, n := m.EngineStats(); q != 0 || n != 0 {
		t.Error("engine stats nonzero without EnableEngines")
	}
}

func TestCacheHitsBypassEngines(t *testing.T) {
	m := NewConfiguredMachine(IntegratedVictim, 2)
	m.EnableEngines(1)
	m.AccessAt(0, 0, false, 0) // local cold fill (uses engine)
	_, before := m.EngineStats()
	m.AccessAt(0, 0, false, 100) // column-buffer hit
	_, after := m.EngineStats()
	if after != before {
		t.Error("a cache hit must not occupy a protocol engine")
	}
}
