package coherence

// Protocol-engine occupancy model. The paper's node has two microcoded
// protocol engines (Section 4.2, citing the authors' "Exploiting
// Parallelism in Cache Coherency Protocol Engines"): every coherence
// transaction — a remote fetch, a recall, an invalidation — occupies an
// engine at the *home* node for its processing time. With fixed
// Table 6 latencies the engines are invisible until they saturate;
// this model makes the saturation visible, so the choice of TWO
// engines (rather than one) can be evaluated (see AblateEngines).
//
// The model activates only on the timed path (AccessAt): the
// uniprocessor experiments and the plain Access interface are
// unaffected.

// EngineOccupancy is the engine service time per coherence
// transaction, in cycles. The protocol engines run at the 200 MHz core
// clock and execute a short microcode sequence per transaction; ~16
// cycles is the scale the authors' protocol-engine paper targets.
const EngineOccupancy = 16

// engines tracks per-node engine availability.
type engines struct {
	nextFree [][]uint64 // [node][engine] absolute cycle
	// QueueCycles accumulates cycles transactions spent waiting for a
	// free engine; Transactions counts engine services.
	QueueCycles  uint64
	Transactions uint64
}

func newEngines(nodes, perNode int) *engines {
	e := &engines{nextFree: make([][]uint64, nodes)}
	for i := range e.nextFree {
		e.nextFree[i] = make([]uint64, perNode)
	}
	return e
}

// occupy claims the earliest-free engine at the node starting no
// earlier than now, returning the queueing delay incurred.
func (e *engines) occupy(node int, now uint64) uint64 {
	free := e.nextFree[node]
	best := 0
	for i := 1; i < len(free); i++ {
		if free[i] < free[best] {
			best = i
		}
	}
	start := now
	var wait uint64
	if free[best] > now {
		wait = free[best] - now
		start = free[best]
	}
	free[best] = start + EngineOccupancy
	e.QueueCycles += wait
	e.Transactions++
	return wait
}

// EnableEngines activates protocol-engine occupancy modelling with the
// given number of engines per node (the paper's device has 2). It
// affects only AccessAt (the multiprocessor timed path).
func (m *Machine) EnableEngines(perNode int) {
	if perNode < 1 {
		panic("coherence: need at least one protocol engine")
	}
	m.eng = newEngines(len(m.Nodes), perNode)
}

// EngineStats reports queueing accumulated by the engine model
// (zeroes when EnableEngines was not called).
func (m *Machine) EngineStats() (queueCycles, transactions uint64) {
	if m.eng == nil {
		return 0, 0
	}
	return m.eng.QueueCycles, m.eng.Transactions
}

// AccessAt services a reference issued at absolute cycle `now`. It is
// the timed variant of Access used by internal/mpsim; when the engine
// model is enabled, coherence transactions queue for the home node's
// protocol engines.
func (m *Machine) AccessAt(proc int, addr uint64, write bool, now uint64) uint64 {
	lat := m.Access(proc, addr, write)
	if m.eng == nil {
		return lat
	}
	// Anything beyond a pure cache hit involved the home node's
	// protocol engine (local directory work is folded into the same
	// engines, as in the real device where the engines front the
	// memory for all shared traffic).
	if lat > m.Lat.VictimHit {
		home := m.HomeOf(addr)
		lat += m.eng.occupy(home, now)
	}
	return lat
}
