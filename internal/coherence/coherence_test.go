package coherence

import (
	"testing"
	"testing/quick"

	"repro/internal/obs"
)

func newRefMachine(n int) *Machine {
	return NewConfiguredMachine(ReferenceCCNUMA, n)
}

func newIntMachine(n int, victim bool) *Machine {
	cfg := IntegratedPlain
	if victim {
		cfg = IntegratedVictim
	}
	return NewConfiguredMachine(cfg, n)
}

func TestHomePlacement(t *testing.T) {
	m := newRefMachine(4)
	if m.HomeOf(0) != 0 || m.HomeOf(PageSize) != 1 || m.HomeOf(4*PageSize) != 0 {
		t.Error("default interleaving wrong")
	}
	m.Place(0x100000, 3*PageSize, 2)
	for off := uint64(0); off < 3*PageSize; off += PageSize {
		if m.HomeOf(0x100000+off) != 2 {
			t.Errorf("placed page at +%#x homed at %d", off, m.HomeOf(0x100000+off))
		}
	}
	if m.HomeOf(0x100000+3*PageSize) == 2 && (0x100000/PageSize+3)%4 != 2 {
		t.Error("placement leaked past the region")
	}
}

func TestReferenceLocalLatencies(t *testing.T) {
	m := newRefMachine(2)
	lat := m.Lat
	addr := uint64(0) // home node 0
	if got := m.Access(0, addr, false); got != lat.LocalCold {
		t.Errorf("cold local access = %d, want %d", got, lat.LocalCold)
	}
	if got := m.Access(0, addr, false); got != lat.CacheHit {
		t.Errorf("FLC hit = %d, want %d", got, lat.CacheHit)
	}
	// Evict from the 16 KB FLC but not the infinite SLC.
	m.Access(0, addr+16<<10, false)
	if got := m.Access(0, addr, false); got != lat.SLCHit {
		t.Errorf("SLC hit = %d, want %d", got, lat.SLCHit)
	}
}

func TestReferenceRemoteLoad(t *testing.T) {
	m := newRefMachine(2)
	addr := uint64(PageSize) // home node 1
	if got := m.Access(0, addr, false); got != m.Lat.RemoteLoad {
		t.Errorf("remote cold load = %d, want %d", got, m.Lat.RemoteLoad)
	}
	if got := m.Access(0, addr, false); got != m.Lat.CacheHit {
		t.Errorf("cached remote = %d, want FLC hit", got)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	m := newRefMachine(4)
	addr := uint64(0)        // home 0
	m.Access(1, addr, false) // node 1 reads (remote)
	m.Access(2, addr, false) // node 2 reads
	inv := m.Invalidations
	// Home writes: must invalidate both sharers with one round trip.
	if got := m.Access(0, addr, true); got < m.Lat.InvalRT {
		t.Errorf("writing shared block = %d, want >= invalidation RT %d", got, m.Lat.InvalRT)
	}
	if m.Invalidations != inv+2 {
		t.Errorf("invalidations = %d, want %d", m.Invalidations, inv+2)
	}
	// The sharers' copies are gone: their next read is remote again.
	if got := m.Access(1, addr, false); got != m.Lat.RemoteLoad {
		t.Errorf("read after invalidation = %d, want remote load", got)
	}
}

func TestDirtyRemoteRecall(t *testing.T) {
	m := newRefMachine(2)
	addr := uint64(0)       // home 0
	m.Access(1, addr, true) // node 1 writes: dirty remote
	// Home read must recall the dirty copy.
	if got := m.Access(0, addr, false); got < m.Lat.RemoteLoad {
		t.Errorf("recall = %d, want >= remote load", got)
	}
	// Node 1's copy must be invalid now.
	if got := m.Access(1, addr, false); got != m.Lat.RemoteLoad {
		t.Errorf("old owner re-read = %d, want remote load", got)
	}
}

func TestIntegratedLocalColumnPrefetch(t *testing.T) {
	m := newIntMachine(1, false)
	// First access to a column: array access (6). The 512 B fill makes
	// the rest of the column hit at 1 cycle.
	if got := m.Access(0, 0, false); got != m.Lat.LocalMem {
		t.Errorf("cold column = %d, want %d", got, m.Lat.LocalMem)
	}
	for off := uint64(32); off < 512; off += 32 {
		if got := m.Access(0, off, false); got != m.Lat.CacheHit {
			t.Fatalf("offset %d = %d, want column-buffer hit", off, got)
		}
	}
}

func TestIntegratedINCCostsArrayAccess(t *testing.T) {
	m := newIntMachine(2, false)
	addr := uint64(PageSize) // home 1, remote for node 0
	if got := m.Access(0, addr, false); got != m.Lat.RemoteLoad {
		t.Errorf("INC cold fetch = %d, want flat remote load %d", got, m.Lat.RemoteLoad)
	}
	// Re-reads hit the INC but still pay the DRAM array + tag check.
	want := m.Lat.LocalMem + m.Lat.INCExtra
	if got := m.Access(0, addr, false); got != want {
		t.Errorf("INC hit = %d, want %d", got, want)
	}
}

func TestVictimStagesRemoteData(t *testing.T) {
	m := newIntMachine(2, true)
	addr := uint64(PageSize)
	m.Access(0, addr, false) // remote fetch; staged in victim
	if got := m.Access(0, addr, false); got != m.Lat.VictimHit {
		t.Errorf("staged re-read = %d, want victim hit %d", got, m.Lat.VictimHit)
	}
}

func TestPoisonedSubBlock(t *testing.T) {
	m := newIntMachine(2, false)
	addr := uint64(0)        // home 0
	m.Access(0, addr, false) // node 0 caches its column
	m.Access(1, addr, true)  // node 1 writes: home copy poisoned
	// Node 0's next read must not hit the stale column buffer: it
	// recalls the dirty copy (remote round trip).
	if got := m.Access(0, addr, false); got < m.Lat.RemoteLoad {
		t.Errorf("read of poisoned block = %d, want >= remote recall", got)
	}
	// But a different block in the same column is still valid.
	if got := m.Access(0, addr+64, false); got != m.Lat.CacheHit {
		t.Errorf("sibling block = %d, want column hit (per-block coherence)", got)
	}
}

func TestINCSevenWayAssociativity(t *testing.T) {
	inc := NewINC(512*8, 32)
	sets := uint64(inc.Sets())
	if sets < 2 {
		t.Fatalf("degenerate INC: %d sets", sets)
	}
	// Nine blocks all mapping to set 0.
	for i := uint64(0); i < 9; i++ {
		inc.Insert(i * sets)
	}
	// The two oldest must be gone; the seven newest present.
	if inc.Lookup(0) || inc.Lookup(sets) {
		t.Error("LRU blocks survived in a 7-way set")
	}
	for i := uint64(2); i < 9; i++ {
		if !inc.Lookup(i * sets) {
			t.Errorf("block %d missing", i*sets)
		}
	}
}

func TestINCInvalidate(t *testing.T) {
	inc := NewINC(512*8, 32)
	inc.Insert(40)
	if !inc.Invalidate(40) {
		t.Error("Invalidate missed")
	}
	if inc.Lookup(40) {
		t.Error("block survived Invalidate")
	}
	if inc.Invalidate(40) {
		t.Error("double Invalidate hit")
	}
}

// TestINCEventAccounting: Evictions counts only valid LRU ways dropped
// by Insert, and Invalidates counts only blocks actually removed.
func TestINCEventAccounting(t *testing.T) {
	inc := NewINC(512*8, 32)
	sets := uint64(inc.Sets())
	// Filling the seven ways of set 0 evicts nothing.
	for i := uint64(0); i < 7; i++ {
		inc.Insert(i * sets)
	}
	if inc.Evictions != 0 {
		t.Errorf("evictions while filling = %d, want 0", inc.Evictions)
	}
	// Two more inserts displace the two LRU ways.
	inc.Insert(7 * sets)
	inc.Insert(8 * sets)
	if inc.Evictions != 2 {
		t.Errorf("evictions after overflow = %d, want 2", inc.Evictions)
	}
	// One real invalidation plus one miss: only the hit counts.
	inc.Invalidate(8 * sets)
	inc.Invalidate(8 * sets)
	if inc.Invalidates != 1 {
		t.Errorf("invalidates = %d, want 1", inc.Invalidates)
	}
}

// TestMachinePublish: machine and summed per-node statistics land in
// the registry's "coherence" family; a nil registry is a no-op.
func TestMachinePublish(t *testing.T) {
	m := newIntMachine(2, true)
	// Node 0 writes its own blocks (local column fills), then node 1
	// reads them (remote loads through its INC).
	for i := uint64(0); i < 64; i++ {
		m.Access(0, i*32, true)
	}
	for i := uint64(0); i < 64; i++ {
		m.Access(1, i*32, false)
	}
	reg := obs.NewRegistry()
	m.Publish(reg)
	if got := reg.Counter("coherence", "accesses").Value(); got != m.Accesses {
		t.Errorf("accesses = %d, want %d", got, m.Accesses)
	}
	if got := reg.Counter("coherence", "remote_loads").Value(); got != m.RemoteLoads {
		t.Errorf("remote_loads = %d, want %d", got, m.RemoteLoads)
	}
	var wantFills int64
	for _, n := range m.Nodes {
		wantFills += n.(*IntegratedNode).ColumnFills
	}
	if wantFills == 0 {
		t.Fatal("workload produced no column fills")
	}
	if got := reg.Counter("coherence", "column_fills").Value(); got != wantFills {
		t.Errorf("column_fills = %d, want %d", got, wantFills)
	}
	if reg.Counter("coherence", "inc_hits").Value()+reg.Counter("coherence", "inc_misses").Value() == 0 {
		t.Error("no INC activity published")
	}
	m.Publish(nil) // must not panic
}

// TestSingleWriterInvariant (property): after any access sequence, at
// most one node believes it can write a block (the directory's dirty
// owner), checked indirectly: writes by different nodes must always
// cost at least an ownership transfer when interleaved.
func TestSingleWriterInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		m := newIntMachine(4, true)
		const addr = 0
		lastWriter := -1
		for _, op := range ops {
			proc := int(op % 4)
			write := op%2 == 0
			lat := m.Access(proc, addr, write)
			if write && lastWriter >= 0 && lastWriter != proc {
				// Ownership moved: must have paid a coherence penalty.
				if lat < m.Lat.InvalRT && lat < m.Lat.RemoteLoad {
					return false
				}
			}
			if write {
				lastWriter = proc
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConfigStrings(t *testing.T) {
	for _, c := range []Config{ReferenceCCNUMA, IntegratedPlain, IntegratedVictim, Config(99)} {
		if c.String() == "" {
			t.Errorf("Config(%d) has empty string", int(c))
		}
	}
}

func TestMachineRejectsBadNodeCounts(t *testing.T) {
	for _, n := range []int{0, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMachine(%d) did not panic", n)
				}
			}()
			NewConfiguredMachine(ReferenceCCNUMA, n)
		}()
	}
}

func TestPlaceRejectsUnknownNode(t *testing.T) {
	m := newRefMachine(2)
	defer func() {
		if recover() == nil {
			t.Error("Place accepted an unknown node")
		}
	}()
	m.Place(0, PageSize, 5)
}

func TestUnitConstructorValidation(t *testing.T) {
	for _, unit := range []uint64{16, 48, 0} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("unit %d accepted", unit)
				}
			}()
			NewConfiguredMachineUnit(IntegratedVictim, 2, unit)
		}()
	}
	// S-COMA only supports the 32 B unit.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("S-COMA with a 512 B unit accepted")
			}
		}()
		NewConfiguredMachineUnit(SimpleCOMA, 2, 512)
	}()
}

func TestLargeUnitInvalidatesWholeRange(t *testing.T) {
	m := NewConfiguredMachineUnit(IntegratedVictim, 2, 512)
	// Node 0 caches a local column; node 1 writes one block in the
	// same 512 B unit; every block of the unit must then be stale for
	// node 0 (false sharing at work).
	m.Access(0, 0, false)
	m.Access(1, 480, true)
	if got := m.Access(0, 64, false); got < m.Lat.RemoteLoad {
		t.Errorf("sibling block after unit invalidation = %d, want a recall", got)
	}
}
