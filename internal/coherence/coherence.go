// Package coherence implements the shared-memory side of the paper
// (Sections 4.2 and 6): a directory-based write-invalidate protocol
// over 32-byte coherence units, with two node architectures —
//
//   - the proposed integrated node: column-buffer data cache (16 KB,
//     2-way, 512 B lines) optionally augmented with the 16×32 B victim
//     cache, local memory at 6 cycles with full-column fills, and a
//     1 MB 7-way set-associative Inter-Node Cache (INC) held in DRAM
//     (7 data blocks + 1 tag block per 512 B column, costing 1–2 extra
//     cycles for the tag check; we charge +1);
//
//   - the reference CC-NUMA node: 16 KB direct-mapped first-level
//     cache with 32 B lines and an infinite second-level cache, as in
//     the paper's upper-bound comparison (only cold and coherence
//     misses remain).
//
// Latencies follow Table 6. The directory lives with the memory at the
// home node (embedded in ECC bits, internal/ecc); protocol state
// transitions are applied atomically at access time, with the fixed
// round-trip latencies standing in for message traffic, exactly as the
// paper's architectural simulator does.
package coherence

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mpsim"
	"repro/internal/obs"
	"repro/internal/paperref"
	"repro/internal/trace"
)

// BlockSize is the coherence unit (bytes). The paper is explicit that
// coherence is maintained on 32-byte blocks, never on the 512-byte
// cache lines (false sharing would outweigh the prefetching benefits).
const BlockSize = 32

// DefaultColumnBytes is the paper's DRAM column (and cache line) size;
// device-derived constructors use the device's own column size instead.
const DefaultColumnBytes = 512

// unitsPerColumn is how many coherence units one paper column holds —
// the INC's set granularity (Figure 6: 7 data blocks + 1 tag block).
const unitsPerColumn = DefaultColumnBytes / BlockSize

// PageSize is the home-placement granularity.
const PageSize = 4096

// Latencies (processor cycles), from Table 6.
type Latencies struct {
	CacheHit   uint64 // column buffer or FLC hit
	FlitCycles uint64 // fabric time per extra 32 B of a large coherence unit
	VictimHit  uint64 // victim cache hit (proposed only)
	LocalMem   uint64 // local memory or INC array access
	INCExtra   uint64 // additional cycles for the INC tag check
	SLCHit     uint64 // second-level cache hit (reference only)
	LocalCold  uint64 // reference: local memory beyond the SLC (model choice; see doc.go)
	RemoteLoad uint64 // fetch a block from a remote node
	InvalRT    uint64 // invalidation round trip
}

// DefaultLatencies returns Table 6 plus the two modelling choices the
// table leaves implicit (INCExtra = 1 cycle of the "1 to 2" the paper
// quotes; LocalCold = 12 for the reference system's cold local misses,
// an SLC lookup followed by a DRAM access behind a conventional bus).
func DefaultLatencies() Latencies {
	t := paperref.Table6
	return Latencies{
		CacheHit:   uint64(t.ColumnBufferHit),
		FlitCycles: 5, // 32 B at ~1.25 GB/s is ~25 ns = 5 cycles @200 MHz
		VictimHit:  uint64(t.VictimHit),
		LocalMem:   uint64(t.LocalMemory),
		INCExtra:   1,
		SLCHit:     uint64(t.SLCHit),
		LocalCold:  12,
		RemoteLoad: uint64(t.RemoteLoad),
		InvalRT:    uint64(t.InvalidationRT),
	}
}

// LatenciesFor derives the Table 6 latency set from a machine
// description: the local-memory cost is the DRAM access time and the
// per-flit fabric cost follows from the coherence unit size and the
// device's raw I/O bandwidth. For core.Proposed() this reproduces
// DefaultLatencies() exactly (32 B at 1.25 GB/s ≈ 25 ns = 5 cycles).
func LatenciesFor(d core.Device) Latencies {
	l := DefaultLatencies()
	l.LocalMem = uint64(d.DRAM.AccessCycles)
	if bw := d.IOBandwidthGBs(); bw > 0 {
		l.FlitCycles = uint64(float64(d.CoherenceUnitBytes) * float64(d.ClockMHz) * 1e6 / (bw * 1e9))
	}
	return l
}

// SyncCosts derives the multiprocessor synchronisation costs from the
// fabric latencies: uncontended lock acquires, lock handoffs, and
// barrier releases are all remote round trips (Table 6's RemoteLoad
// scale, which is where mpsim.DefaultSyncCosts' 80s come from).
func (l Latencies) SyncCosts() mpsim.SyncCosts {
	return mpsim.SyncCosts{
		LockAcquire: l.RemoteLoad,
		LockHandoff: l.RemoteLoad,
		Barrier:     l.RemoteLoad,
	}
}

// dirState is the home directory state of one block.
type dirState uint8

const (
	dirHome   dirState = iota // only the home may have it cached
	dirShared                 // read-only copies at Sharers
	dirDirty                  // exclusive modified copy at Owner
)

type dirEntry struct {
	sharers uint64 // bitmask of nodes with copies (excluding home implicit copy)
	owner   int32
	state   dirState
}

// Machine is a complete shared-memory machine: N nodes plus the
// directory. It implements the access-timing interface consumed by
// internal/mpsim.
type Machine struct {
	Nodes []Node
	Lat   Latencies
	// Unit is the coherence granularity in bytes (32 in the paper;
	// configurable for the false-sharing ablation of EXPERIMENTS.md).
	Unit uint64

	dir  dirTable  // block number -> directory entry (paged dense array)
	home homeTable // explicit page placement (page -> node)
	eng  *engines  // optional protocol-engine occupancy model

	// Stats
	RemoteLoads   int64
	Invalidations int64
	LocalAccesses int64
	Hits          int64
	Accesses      int64
}

// Node is the architecture-specific per-node cache state.
type Node interface {
	// Access services a load or store issued by this node at the given
	// address, which the caller has already classified as local
	// (home == this node) or remote. It returns the latency excluding
	// any coherence (directory) penalty, and records internal state.
	// fetched reports whether a remote block had to be brought in (an
	// INC/SLC miss) — the caller charges RemoteLoad in that case.
	Access(addr uint64, write, local bool) (lat uint64, fetched bool)
	// Invalidate removes the coherence unit [base, base+size) from all
	// caching structures of this node.
	Invalidate(base, size uint64)
}

// NewMachine builds a machine with n nodes using the given node
// constructor (one of NewIntegratedNode / NewReferenceNode wrappers).
func NewMachine(n int, lat Latencies, mk func(id int) Node) *Machine {
	if n < 1 || n > 64 {
		panic(fmt.Sprintf("coherence: node count %d outside 1..64", n))
	}
	m := &Machine{Lat: lat, Unit: BlockSize}
	for i := 0; i < n; i++ {
		m.Nodes = append(m.Nodes, mk(i))
	}
	return m
}

// HomeOf maps an address to its home node: explicitly placed pages
// first (Place), then round-robin page interleaving.
func (m *Machine) HomeOf(addr uint64) int {
	if n, ok := m.home.get(addr / PageSize); ok {
		return n
	}
	return int((addr / PageSize) % uint64(len(m.Nodes)))
}

// Place assigns the pages covering [base, base+size) to the given
// node, overriding the default interleaving. Parallel workloads use it
// to co-locate each processor's partition with its node, as the
// paper's simulations (and any real CC-NUMA allocator) would.
func (m *Machine) Place(base, size uint64, node int) {
	if node < 0 || node >= len(m.Nodes) {
		panic(fmt.Sprintf("coherence: Place on unknown node %d", node))
	}
	for page := base / PageSize; page <= (base+size-1)/PageSize; page++ {
		m.home.set(page, node)
	}
}

func (m *Machine) entry(block uint64) *dirEntry {
	return m.dir.entry(block)
}

// Access services one memory reference from proc and returns its
// latency in cycles. The protocol actions (invalidations, ownership
// transfer) are applied immediately; their cost is the fixed Table 6
// round-trip latencies.
func (m *Machine) Access(proc int, addr uint64, write bool) uint64 {
	m.Accesses++
	block := addr / m.Unit
	home := m.HomeOf(addr)
	local := home == proc
	e := m.entry(block)

	var coherencePenalty uint64

	if local {
		m.LocalAccesses++
		switch e.state {
		case dirDirty:
			if int(e.owner) != proc {
				// Recall the dirty copy from the remote owner.
				m.Nodes[e.owner].Invalidate(block*m.Unit, m.Unit)
				m.RemoteLoads++
				coherencePenalty += m.Lat.RemoteLoad
				e.state = dirHome
				e.sharers = 0
			}
		case dirShared:
			if write {
				// Invalidate all remote sharers.
				m.invalidateSharers(e, proc, block)
				coherencePenalty += m.Lat.InvalRT
				e.state = dirHome
			}
		}
	} else {
		// Remote access: consult the home directory.
		switch e.state {
		case dirDirty:
			if int(e.owner) != proc {
				m.Nodes[e.owner].Invalidate(block*m.Unit, m.Unit)
				e.state = dirHome
				e.sharers = 0
				coherencePenalty += m.Lat.RemoteLoad // owner -> home writeback trip
			}
		case dirShared:
			if write {
				m.invalidateSharers(e, proc, block)
				coherencePenalty += m.Lat.InvalRT
				e.state = dirHome
				e.sharers = 0
			}
		}
		if write {
			e.state = dirDirty
			e.owner = int32(proc)
			e.sharers = 1 << uint(proc)
			// The home node's own cached copy becomes stale.
			m.Nodes[home].Invalidate(block*m.Unit, m.Unit)
		} else {
			if e.state != dirDirty {
				e.state = dirShared
			}
			e.sharers |= 1 << uint(proc)
		}
	}

	lat, fetched := m.Nodes[proc].Access(addr, write, local)
	if fetched && !local {
		m.RemoteLoads++
		// Larger coherence units pay a serialisation term on top of
		// the round trip (fabric time per extra 32 B flit).
		lat += m.Lat.RemoteLoad + (m.Unit/32-1)*m.Lat.FlitCycles
	}
	if lat == m.Lat.CacheHit && coherencePenalty == 0 {
		m.Hits++
	}
	return lat + coherencePenalty
}

// Publish adds the machine's protocol statistics — and the per-node
// INC/column-fill/page-allocation accounting, summed across nodes — to
// reg's "coherence" family. Counters accumulate, so a sweep publishing
// after every run builds whole-sweep totals. A nil registry is a no-op.
func (m *Machine) Publish(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("coherence", "accesses").Add(m.Accesses)
	reg.Counter("coherence", "hits").Add(m.Hits)
	reg.Counter("coherence", "local_accesses").Add(m.LocalAccesses)
	reg.Counter("coherence", "remote_loads").Add(m.RemoteLoads)
	reg.Counter("coherence", "invalidations").Add(m.Invalidations)
	var incHits, incMisses, incEvictions, incInvalidates int64
	var columnFills, pageAllocs int64
	for _, node := range m.Nodes {
		switch n := node.(type) {
		case *IntegratedNode:
			incHits += n.inc.Hits
			incMisses += n.inc.Misses
			incEvictions += n.inc.Evictions
			incInvalidates += n.inc.Invalidates
			columnFills += n.ColumnFills
		case *SCOMANode:
			pageAllocs += n.Allocations
		}
	}
	reg.Counter("coherence", "inc_hits").Add(incHits)
	reg.Counter("coherence", "inc_misses").Add(incMisses)
	reg.Counter("coherence", "inc_evictions").Add(incEvictions)
	reg.Counter("coherence", "inc_invalidates").Add(incInvalidates)
	reg.Counter("coherence", "column_fills").Add(columnFills)
	reg.Counter("coherence", "page_allocs").Add(pageAllocs)
}

func (m *Machine) invalidateSharers(e *dirEntry, except int, block uint64) {
	for n := 0; n < len(m.Nodes); n++ {
		if n == except {
			continue
		}
		if e.sharers&(1<<uint(n)) != 0 {
			m.Nodes[n].Invalidate(block*m.Unit, m.Unit)
			m.Invalidations++
		}
	}
	e.sharers = 0
}

// cacheKind re-exports the trace kind for sibling files.
type cacheKind = trace.Kind

// kindOf maps a write flag to the trace kind used by the cache models.
func kindOf(write bool) trace.Kind {
	if write {
		return trace.Store
	}
	return trace.Load
}

// ---------------------------------------------------------------------
// Integrated node.
// ---------------------------------------------------------------------

// INC is the Inter-Node Cache: 7-way set-associative over 32 B blocks,
// seven blocks plus a tag block per 512 B DRAM column (Figure 6). The
// tag state is two flat arrays indexed by set*ways+way (MRU first
// within a set) — one allocation each, not one per set.
type INC struct {
	sets   int
	ways   int
	blocks []uint64 // block numbers, set-major, MRU first within a set
	valid  []bool
	Hits   int64
	Misses int64
	// Evictions counts valid LRU ways displaced by Insert; Invalidates
	// counts blocks removed by protocol invalidations. Together with
	// Hits/Misses they are the INC's full event accounting.
	Evictions   int64
	Invalidates int64
}

// NewINC builds an INC of the given total data capacity in bytes
// (1 MB in the paper's simulations) holding blocks of unitBytes, with
// the paper's 7-way organisation.
func NewINC(capacityBytes, unitBytes uint64) *INC {
	return NewINCWays(capacityBytes, unitBytes, 7)
}

// NewINCWays builds an INC with explicit associativity (for the
// ablation study; the paper's column organisation fixes it at 7).
func NewINCWays(capacityBytes, unitBytes uint64, ways int) *INC {
	return NewINCGeom(capacityBytes, unitBytes, ways, unitsPerColumn)
}

// NewINCGeom builds an INC whose sets each span unitsPerSet units of
// capacity — one DRAM column in the device organisation, so for a
// 512 B column with 32 B units each column holds 7 data blocks plus
// the tag block (Figure 6) and sets = columns. Larger units keep the
// same associativity with proportionally fewer sets.
func NewINCGeom(capacityBytes, unitBytes uint64, ways, unitsPerSet int) *INC {
	if ways < 1 {
		panic("coherence: INC needs at least one way")
	}
	if unitsPerSet < 1 {
		panic("coherence: INC needs at least one unit per set")
	}
	sets := int(capacityBytes / (uint64(unitsPerSet) * unitBytes))
	if sets < 1 {
		sets = 1
	}
	return &INC{
		sets:   sets,
		ways:   ways,
		blocks: make([]uint64, sets*ways),
		valid:  make([]bool, sets*ways),
	}
}

// NewMachineINC builds an integrated machine whose nodes use an INC
// of the given associativity and capacity (ablation support; the paper
// uses 7 ways and 1 MB).
func NewMachineINC(cfg Config, n, ways int, incBytes uint64) *Machine {
	lat := DefaultLatencies()
	withVictim := cfg == IntegratedVictim
	return NewMachine(n, lat, func(id int) Node {
		node := NewIntegratedNode(id, lat, withVictim, incBytes)
		node.inc = NewINCWays(incBytes, BlockSize, ways)
		return node
	})
}

func (c *INC) set(block uint64) int { return int(block % uint64(c.sets)) }

// Sets returns the number of sets (for tests and ablations).
func (c *INC) Sets() int { return c.sets }

// row returns the block's set as flat-array slices.
func (c *INC) row(block uint64) (blocks []uint64, valid []bool) {
	s := c.set(block) * c.ways
	return c.blocks[s : s+c.ways], c.valid[s : s+c.ways]
}

// Lookup probes the INC for the block, updating LRU on a hit.
func (c *INC) Lookup(block uint64) bool {
	blocks, valid := c.row(block)
	for w := 0; w < c.ways; w++ {
		if valid[w] && blocks[w] == block {
			copy(blocks[1:w+1], blocks[:w])
			copy(valid[1:w+1], valid[:w])
			blocks[0] = block
			valid[0] = true
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// Insert places the block at MRU, evicting the set's LRU way.
func (c *INC) Insert(block uint64) {
	blocks, valid := c.row(block)
	if valid[c.ways-1] {
		c.Evictions++
	}
	copy(blocks[1:], blocks[:c.ways-1])
	copy(valid[1:], valid[:c.ways-1])
	blocks[0] = block
	valid[0] = true
}

// Invalidate removes the block if present.
func (c *INC) Invalidate(block uint64) bool {
	blocks, valid := c.row(block)
	for w := 0; w < c.ways; w++ {
		if valid[w] && blocks[w] == block {
			c.Invalidates++
			copy(blocks[w:], blocks[w+1:])
			// The LRU way is dropped along with the invalidated block
			// (cleared before the flag compaction, so the way shifted
			// into the last slot comes up invalid as well).
			valid[c.ways-1] = false
			copy(valid[w:], valid[w+1:])
			valid[c.ways-1] = false
			return true
		}
	}
	return false
}

// IntegratedNode is the proposed processor/memory device as a
// multiprocessor node.
type IntegratedNode struct {
	id         int
	lat        Latencies
	unit       uint64 // coherence unit (32 B in the paper)
	line       uint64 // column (cache line) size (512 B in the paper)
	victimLine uint64 // victim cache entry size (32 B in the paper)
	dcache     *cache.SetAssoc
	victim     *cache.Victim // nil when the victim cache is disabled
	inc        *INC
	// poisoned marks coherence units invalidated inside a still-resident
	// column buffer line (coherence is per-unit; the column buffer keeps
	// per-unit valid bits).
	poisoned pagedBits

	ColumnFills int64
}

// NewIntegratedNode builds a node with the paper's cache organisation.
// withVictim selects the victim-cache-augmented variant of Figures
// 13–17. incBytes is the INC capacity (1 MB in the paper).
func NewIntegratedNode(id int, lat Latencies, withVictim bool, incBytes uint64) *IntegratedNode {
	return NewIntegratedNodeUnit(id, lat, withVictim, incBytes, BlockSize)
}

// NewIntegratedNodeUnit builds a node with a non-default coherence
// unit (the false-sharing ablation).
func NewIntegratedNodeUnit(id int, lat Latencies, withVictim bool, incBytes, unit uint64) *IntegratedNode {
	n := &IntegratedNode{
		id:         id,
		lat:        lat,
		unit:       unit,
		line:       DefaultColumnBytes,
		victimLine: cache.VictimLineSize,
		dcache:     cache.ProposedDCache(),
		inc:        NewINC(incBytes, unit),
	}
	if withVictim {
		n.victim = cache.ProposedVictim()
	}
	return n
}

// NewIntegratedNodeDevice builds a node whose cache organisation —
// column buffers, victim cache, and INC geometry — is derived from a
// machine description instead of the paper literals. For
// core.Proposed() this matches NewIntegratedNodeUnit exactly.
func NewIntegratedNodeDevice(id int, lat Latencies, withVictim bool, unit uint64, d core.Device) *IntegratedNode {
	// Each INC set spans one column of capacity regardless of the
	// ablation unit, as in the legacy constructor.
	perSet := d.DRAM.ColumnBytes / d.CoherenceUnitBytes
	n := &IntegratedNode{
		id:         id,
		lat:        lat,
		unit:       unit,
		line:       uint64(d.DRAM.ColumnBytes),
		victimLine: uint64(d.VictimLineBytes),
		dcache: cache.NewSetAssoc(
			fmt.Sprintf("%dKB %d-way %dB device D-cache", d.DCacheBytes>>10, d.DCacheWays, d.DCacheLineBytes),
			uint64(d.DCacheBytes), uint64(d.DCacheLineBytes), d.DCacheWays),
		inc: NewINCGeom(uint64(d.INCBytes), unit, d.INCWays, perSet),
	}
	if withVictim && d.VictimEntries > 0 {
		n.victim = cache.NewVictim(d.VictimEntries, uint64(d.VictimLineBytes))
	}
	return n
}

// Access implements Node.
func (n *IntegratedNode) Access(addr uint64, write, local bool) (uint64, bool) {
	block := addr / n.unit
	kind := trace.Load
	if write {
		kind = trace.Store
	}

	if local {
		// Local data flows through the column buffers directly.
		if n.dcache.Probe(addr) && !n.poisoned.get(block) {
			n.dcache.Access(addr, kind) // LRU update
			return n.lat.CacheHit, false
		}
		if n.victim != nil && n.victim.Lookup(addr) {
			return n.lat.VictimHit, false
		}
		// DRAM array access fills the whole 512 B column (the paper's
		// single-cycle fill after the array access).
		n.fill(addr, kind)
		return n.lat.LocalMem, false
	}

	// Remote data is cached in the INC, which lives in the DRAM array:
	// every INC access pays the array access plus the tag-block check
	// (Table 6: "Access local memory & INC: 6", plus the 1–2 extra
	// cycles of Section 4.2). Only the victim cache — doubling as the
	// staging area for imported data — can serve remote blocks at
	// processor speed, which is precisely why it matters so much for
	// WATER (Section 6.2).
	if n.victim != nil && n.victim.Lookup(addr) && !n.poisoned.get(block) {
		return n.lat.VictimHit, false
	}
	arrayCost := n.lat.LocalMem + n.lat.INCExtra
	if n.inc.Lookup(block) && !n.poisoned.get(block) {
		if n.victim != nil {
			n.victim.Insert(addr)
		}
		return arrayCost, false
	}
	// INC miss: fetch the block from its home node (the 512 B column
	// organisation gives the INC its 7-way associativity, which is
	// what keeps these misses rare). The caller charges the flat
	// 80-cycle remote load of Table 6; the INC array update overlaps
	// the round trip, so no array cost is added here.
	n.poisoned.clear(block)
	n.inc.Insert(block)
	if n.victim != nil {
		n.victim.Insert(addr)
	}
	return 0, true
}

// fill loads the column containing addr into the D-cache, staging the
// evicted line's MRU sub-block into the victim cache.
func (n *IntegratedNode) fill(addr uint64, kind trace.Kind) {
	if n.victim != nil {
		n.dcache.OnEvict = func(e cache.Eviction) {
			sub := e.Addr + uint64(e.LastSub)/n.victimLine*n.victimLine
			n.victim.Insert(sub)
		}
	}
	n.dcache.Access(addr, kind)
	n.ColumnFills++
	// The whole column is now valid: clear any poisoned blocks in it.
	lineBase := addr / n.line * n.line
	for b := lineBase / n.unit; b <= (lineBase+n.line-1)/n.unit; b++ {
		n.poisoned.clear(b)
	}
}

// Invalidate implements Node.
func (n *IntegratedNode) Invalidate(base, size uint64) {
	block := base / n.unit
	if n.dcache.Probe(base) {
		n.poisoned.set(block)
	}
	if n.victim != nil {
		// The unit may span several victim-cache entries.
		for a := base; a < base+size; a += n.victimLine {
			n.victim.Invalidate(a)
		}
	}
	n.inc.Invalidate(block)
}

// ---------------------------------------------------------------------
// Reference CC-NUMA node.
// ---------------------------------------------------------------------

// ReferenceNode is the comparison CC-NUMA node: 16 KB direct-mapped
// FLC with 32 B lines and an infinite SLC.
type ReferenceNode struct {
	id      int
	lat     Latencies
	unit    uint64
	flcLine uint64 // first-level cache line size (32 B in the paper)
	flc     *cache.SetAssoc
	slc     pagedBits // infinite second-level cache: block presence
}

// NewReferenceNode builds a reference node.
func NewReferenceNode(id int, lat Latencies) *ReferenceNode {
	return NewReferenceNodeUnit(id, lat, BlockSize)
}

// NewReferenceNodeUnit builds a reference node with a non-default
// coherence unit.
func NewReferenceNodeUnit(id int, lat Latencies, unit uint64) *ReferenceNode {
	return NewReferenceNodeDevice(id, lat, unit, core.Reference())
}

// NewReferenceNodeDevice builds a reference node whose first-level
// cache is derived from a machine description (the D-cache fields of a
// non-integrated device). core.Reference() reproduces the paper's
// 16 KB direct-mapped FLC with 32 B lines.
func NewReferenceNodeDevice(id int, lat Latencies, unit uint64, d core.Device) *ReferenceNode {
	return &ReferenceNode{
		id:      id,
		lat:     lat,
		unit:    unit,
		flcLine: uint64(d.DCacheLineBytes),
		flc: cache.NewSetAssoc(
			fmt.Sprintf("FLC %dKB %d-way %dB", d.DCacheBytes>>10, d.DCacheWays, d.DCacheLineBytes),
			uint64(d.DCacheBytes), uint64(d.DCacheLineBytes), d.DCacheWays),
	}
}

// Access implements Node.
func (n *ReferenceNode) Access(addr uint64, write, local bool) (uint64, bool) {
	block := addr / n.unit
	kind := trace.Load
	if write {
		kind = trace.Store
	}
	if n.flc.Access(addr, kind) && n.slc.get(block) {
		return n.lat.CacheHit, false
	}
	if n.slc.get(block) {
		return n.lat.SLCHit, false
	}
	n.slc.set(block)
	if local {
		return n.lat.LocalCold, false
	}
	return 0, true // caller charges RemoteLoad
}

// Invalidate implements Node.
func (n *ReferenceNode) Invalidate(base, size uint64) {
	// The unit may span several FLC lines.
	for a := base; a < base+size; a += n.flcLine {
		n.flc.Invalidate(a)
	}
	n.slc.clear(base / n.unit)
}

// ---------------------------------------------------------------------
// Machine constructors for the three configurations of Figures 13–17.
// ---------------------------------------------------------------------

// Config selects one of the paper's three simulated systems.
type Config int

// The three systems compared in Figures 13–17.
const (
	ReferenceCCNUMA  Config = iota // FLC + infinite SLC
	IntegratedPlain                // column buffers + INC, no victim cache
	IntegratedVictim               // column buffers + victim cache + INC
)

func (c Config) String() string {
	switch c {
	case ReferenceCCNUMA:
		return "reference CC-NUMA"
	case IntegratedPlain:
		return "integrated (no victim)"
	case IntegratedVictim:
		return "integrated + victim"
	case SimpleCOMA:
		return "integrated S-COMA"
	default:
		return fmt.Sprintf("Config(%d)", int(c))
	}
}

// INCBytes is the paper's per-node Inter-Node Cache capacity.
const INCBytes = 1 << 20

// NewConfiguredMachine builds an n-node machine of the given config
// with Table 6 latencies and the paper's 32 B coherence unit.
func NewConfiguredMachine(cfg Config, n int) *Machine {
	return NewConfiguredMachineUnit(cfg, n, BlockSize)
}

// NewConfiguredMachineUnit builds a machine with a non-default
// coherence unit. The paper argues (Section 6.2) that the 512 B cache
// lines must NOT be used as coherence units — this constructor lets
// the ablation experiments demonstrate why.
func NewConfiguredMachineUnit(cfg Config, n int, unit uint64) *Machine {
	return NewConfiguredMachineDevices(cfg, n, unit, core.Proposed(), core.Reference())
}

// NewConfiguredMachineDevices builds a machine of the given config
// whose node organisation and latencies are derived from a pair of
// machine descriptions: prop describes the integrated device (and sets
// the fabric latencies for every config), ref the conventional CC-NUMA
// node. With the default devices this reproduces the paper's machines
// exactly.
func NewConfiguredMachineDevices(cfg Config, n int, unit uint64, prop, ref core.Device) *Machine {
	if unit < 32 || unit&(unit-1) != 0 {
		panic("coherence: unit must be a power of two >= 32")
	}
	lat := LatenciesFor(prop)
	var m *Machine
	switch cfg {
	case ReferenceCCNUMA:
		m = NewMachine(n, lat, func(id int) Node { return NewReferenceNodeDevice(id, lat, unit, ref) })
	case IntegratedPlain:
		m = NewMachine(n, lat, func(id int) Node {
			return NewIntegratedNodeDevice(id, lat, false, unit, prop)
		})
	case IntegratedVictim:
		m = NewMachine(n, lat, func(id int) Node {
			return NewIntegratedNodeDevice(id, lat, true, unit, prop)
		})
	case SimpleCOMA:
		if unit != uint64(prop.CoherenceUnitBytes) {
			panic("coherence: S-COMA supports only the device's coherence unit")
		}
		m = NewSCOMAMachineDevice(n, prop)
	default:
		panic("coherence: unknown config")
	}
	m.Unit = unit
	return m
}
