package vm

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

// FuzzStep feeds arbitrary decoded instructions to the CPU and
// requires that execution never panics: every failure mode must be a
// returned error (bad opcode, divide by zero, fetch fault).
func FuzzStep(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint8(2), uint8(3), int64(4), uint64(7), uint64(9))
	f.Add(uint8(30), uint8(2), uint8(1), uint8(1), int64(0x100000), uint64(0), uint64(0))
	f.Add(uint8(255), uint8(0), uint8(0), uint8(0), int64(-1), uint64(1), uint64(2))
	f.Fuzz(func(t *testing.T, op, rd, rs1, rs2 uint8, imm int64, v1, v2 uint64) {
		prog := &isa.Program{
			Entry:    0x1000,
			CodeBase: 0x1000,
			Code: []isa.Instr{
				{Op: isa.Op(op), Rd: rd % isa.NumRegs, Rs1: rs1 % isa.NumRegs,
					Rs2: rs2 % isa.NumRegs, Imm: imm},
				{Op: isa.OpHalt},
			},
			Symbols: map[string]uint64{},
		}
		c := New(prog, trace.Discard)
		if r := rs1 % isa.NumRegs; r != isa.RegZero {
			c.Regs[r] = v1
		}
		if r := rs2 % isa.NumRegs; r != isa.RegZero {
			c.Regs[r] = v2
		}
		_ = c.Run(16) // errors are acceptable; panics are not
		if c.Regs[isa.RegZero] != 0 {
			t.Fatal("r0 modified")
		}
	})
}
