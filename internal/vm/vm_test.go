package vm

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/trace"
)

func run(t *testing.T, src string) *CPU {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	c := New(p, trace.Discard)
	if err := c.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !c.Halted() {
		t.Fatal("program did not halt")
	}
	return c
}

func TestArithmetic(t *testing.T) {
	c := run(t, `
	main:	li  r1, 7
		li  r2, 5
		add r3, r1, r2
		sub r4, r1, r2
		mul r5, r1, r2
		div r6, r1, r2
		rem r7, r1, r2
		halt
	`)
	want := map[int]uint64{3: 12, 4: 2, 5: 35, 6: 1, 7: 2}
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("r%d = %d, want %d", r, c.Regs[r], v)
		}
	}
}

func TestSignedOps(t *testing.T) {
	c := run(t, `
	main:	li   r1, -8
		li   r2, 3
		div  r3, r1, r2
		srai r4, r1, 1
		slt  r5, r1, r2
		sltu r6, r1, r2
		halt
	`)
	if got := int64(c.Regs[3]); got != -2 {
		t.Errorf("div -8/3 = %d, want -2", got)
	}
	if got := int64(c.Regs[4]); got != -4 {
		t.Errorf("srai -8>>1 = %d, want -4", got)
	}
	if c.Regs[5] != 1 {
		t.Errorf("slt(-8,3) = %d, want 1", c.Regs[5])
	}
	if c.Regs[6] != 0 {
		t.Errorf("sltu(big,3) = %d, want 0", c.Regs[6])
	}
}

func TestRegisterZeroImmutable(t *testing.T) {
	c := run(t, `
	main:	li  r0, 99
		add r1, r0, r0
		halt
	`)
	if c.Regs[0] != 0 || c.Regs[1] != 0 {
		t.Errorf("r0 = %d, r1 = %d; r0 must stay 0", c.Regs[0], c.Regs[1])
	}
}

func TestLoadsStoresAllWidths(t *testing.T) {
	c := run(t, `
	main:	la  r1, buf
		li  r2, -1
		sb  r2, 0(r1)
		lbu r3, 0(r1)
		lb  r4, 0(r1)
		li  r5, 0x1234
		sh  r5, 8(r1)
		lhu r6, 8(r1)
		li  r7, 0x12345678
		sw  r7, 16(r1)
		lw  r8, 16(r1)
		sd  r7, 24(r1)
		ld  r9, 24(r1)
		halt
		.data
	buf:	.space 64
	`)
	if c.Regs[3] != 0xff {
		t.Errorf("lbu = %#x, want 0xff", c.Regs[3])
	}
	if int64(c.Regs[4]) != -1 {
		t.Errorf("lb = %d, want -1", int64(c.Regs[4]))
	}
	if c.Regs[6] != 0x1234 {
		t.Errorf("lhu = %#x", c.Regs[6])
	}
	if c.Regs[8] != 0x12345678 {
		t.Errorf("lw = %#x", c.Regs[8])
	}
	if c.Regs[9] != 0x12345678 {
		t.Errorf("ld = %#x", c.Regs[9])
	}
}

func TestSignExtensionLoadWord(t *testing.T) {
	c := run(t, `
	main:	la r1, buf
		li r2, -2
		sw r2, 0(r1)
		lw r3, 0(r1)
		lwu r4, 0(r1)
		halt
		.data
	buf:	.space 8
	`)
	if int64(c.Regs[3]) != -2 {
		t.Errorf("lw sign extension: %d, want -2", int64(c.Regs[3]))
	}
	if c.Regs[4] != 0xfffffffe {
		t.Errorf("lwu zero extension: %#x, want 0xfffffffe", c.Regs[4])
	}
}

func TestLoop(t *testing.T) {
	c := run(t, `
	main:	li r1, 0
		li r2, 0
	loop:	add r2, r2, r1
		addi r1, r1, 1
		slti r3, r1, 101
		bne r3, zero, loop
		halt
	`)
	if c.Regs[2] != 5050 {
		t.Errorf("sum 0..100 = %d, want 5050", c.Regs[2])
	}
	if c.Branches == 0 || c.TakenBranches == 0 {
		t.Error("branch counters not maintained")
	}
}

func TestCallRet(t *testing.T) {
	c := run(t, `
	main:	li r1, 10
		call double
		call double
		halt
	double:	add r1, r1, r1
		ret
	`)
	if c.Regs[1] != 40 {
		t.Errorf("after two calls r1 = %d, want 40", c.Regs[1])
	}
}

func TestFloatOps(t *testing.T) {
	c := run(t, `
	main:	la r1, vals
		ld r2, 0(r1)
		ld r3, 8(r1)
		fadd r4, r2, r3
		fmul r5, r2, r3
		fdiv r6, r2, r3
		fsqrt r7, r5
		cvtfi r8, r4
		li  r9, 7
		cvtif r10, r9
		halt
		.data
	vals:	.double 6.0, 1.5
	`)
	if f := math.Float64frombits(c.Regs[4]); f != 7.5 {
		t.Errorf("fadd = %v, want 7.5", f)
	}
	if f := math.Float64frombits(c.Regs[5]); f != 9.0 {
		t.Errorf("fmul = %v, want 9", f)
	}
	if f := math.Float64frombits(c.Regs[6]); f != 4.0 {
		t.Errorf("fdiv = %v, want 4", f)
	}
	if f := math.Float64frombits(c.Regs[7]); f != 3.0 {
		t.Errorf("fsqrt = %v, want 3", f)
	}
	if c.Regs[8] != 7 {
		t.Errorf("cvtfi = %d, want 7", c.Regs[8])
	}
	if f := math.Float64frombits(c.Regs[10]); f != 7.0 {
		t.Errorf("cvtif = %v, want 7", f)
	}
	if c.FloatOps != 6 {
		t.Errorf("FloatOps = %d, want 6", c.FloatOps)
	}
}

func TestTraceEvents(t *testing.T) {
	p := asm.MustAssemble(`
	main:	la r1, buf
		lw r2, 0(r1)
		sw r2, 4(r1)
		halt
		.data
	buf:	.space 16
	`)
	var counts trace.Counts
	var refs []trace.Ref
	sink := trace.Tee{&counts, trace.SinkFunc(func(r trace.Ref) { refs = append(refs, r) })}
	c := New(p, sink)
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if counts.Ifetches != 4 {
		t.Errorf("ifetches = %d, want 4", counts.Ifetches)
	}
	if counts.Loads != 1 || counts.Stores != 1 {
		t.Errorf("loads/stores = %d/%d, want 1/1", counts.Loads, counts.Stores)
	}
	// The load must be to buf, size 4.
	base := p.Symbols["buf"]
	var sawLoad bool
	for _, r := range refs {
		if r.Kind == trace.Load {
			sawLoad = true
			if r.Addr != base || r.Size != 4 {
				t.Errorf("load ref = %+v, want addr %#x size 4", r, base)
			}
		}
	}
	if !sawLoad {
		t.Error("no load event observed")
	}
}

func TestBudget(t *testing.T) {
	p := asm.MustAssemble(`
	main:	j main
	`)
	c := New(p, trace.Discard)
	err := c.Run(1000)
	if !errors.Is(err, ErrBudget) {
		t.Errorf("Run = %v, want ErrBudget", err)
	}
	if c.Instructions != 1000 {
		t.Errorf("instructions = %d, want 1000", c.Instructions)
	}
}

func TestDivideByZeroFaults(t *testing.T) {
	p := asm.MustAssemble(`
	main:	li r1, 1
		div r2, r1, r0
		halt
	`)
	c := New(p, trace.Discard)
	err := c.Run(0)
	if err == nil || !strings.Contains(err.Error(), "divide by zero") {
		t.Errorf("Run = %v, want divide-by-zero fault", err)
	}
}

func TestFetchOutsideCodeFaults(t *testing.T) {
	p := asm.MustAssemble(`
	main:	jalr r0, r0, 0x9000000
	`)
	c := New(p, trace.Discard)
	err := c.Run(0)
	if err == nil || !strings.Contains(err.Error(), "outside code segment") {
		t.Errorf("Run = %v, want fetch fault", err)
	}
}

func TestSparseMemory(t *testing.T) {
	m := NewMemory()
	m.Write(0x12345678, 8, 0xdeadbeefcafef00d)
	if got := m.Read(0x12345678, 8); got != 0xdeadbeefcafef00d {
		t.Errorf("read back %#x", got)
	}
	// Cross-page access (pages are 64 KiB).
	m.Write(0xFFFC, 8, 0x1122334455667788)
	if got := m.Read(0xFFFC, 8); got != 0x1122334455667788 {
		t.Errorf("cross-page read back %#x", got)
	}
	if got := m.Read(0x999999999, 4); got != 0 {
		t.Errorf("untouched memory = %#x, want 0", got)
	}
	if m.PagesAllocated() > 3 {
		t.Errorf("pages allocated = %d, want sparse (<=3)", m.PagesAllocated())
	}
}

func TestMemoryLittleEndian(t *testing.T) {
	m := NewMemory()
	m.Write(100, 4, 0x04030201)
	for i, want := range []byte{1, 2, 3, 4} {
		if got := m.Load8(100 + uint64(i)); got != want {
			t.Errorf("byte %d = %d, want %d", i, got, want)
		}
	}
}

func TestDataSegmentLoaded(t *testing.T) {
	p := asm.MustAssemble(`
	main:	la r1, tab
		lw r2, 8(r1)
		halt
		.data
	tab:	.word 10, 20, 30
	`)
	c := New(p, trace.Discard)
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if c.Regs[2] != 30 {
		t.Errorf("loaded %d, want 30", c.Regs[2])
	}
}

func TestJalLinksCorrectAddress(t *testing.T) {
	p := asm.MustAssemble(`
		.text 0x1000
	main:	call fn
		halt
	fn:	ret
	`)
	c := New(p, trace.Discard)
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	// After return, ra should hold main+4 = 0x1004.
	if c.Regs[isa.RegRA] != 0x1004 {
		t.Errorf("ra = %#x, want 0x1004", c.Regs[isa.RegRA])
	}
}

func TestLuiAndJalr(t *testing.T) {
	c := run(t, `
	main:	lui r1, 0x1234
		srli r2, r1, 16
		la r3, fn
		jalr ra, r3, 0
		halt
	fn:	li r4, 9
		ret
	`)
	if c.Regs[1] != 0x12340000 || c.Regs[2] != 0x1234 {
		t.Errorf("lui: r1=%#x r2=%#x", c.Regs[1], c.Regs[2])
	}
	if c.Regs[4] != 9 {
		t.Error("indirect call did not run")
	}
}

func TestCrossPageStore(t *testing.T) {
	m := NewMemory()
	// Write straddling the 64 KiB page boundary.
	m.Write(0xFFFE, 4, 0xAABBCCDD)
	if got := m.Read(0xFFFE, 4); got != 0xAABBCCDD {
		t.Errorf("cross-page read = %#x", got)
	}
	// Little-endian: 0xDD 0xCC 0xBB 0xAA from 0xFFFE.
	if m.Load8(0x10001) != 0xAA {
		t.Errorf("byte past the boundary = %#x, want 0xAA", m.Load8(0x10001))
	}
}

func TestRunToHaltUnbounded(t *testing.T) {
	p := asm.MustAssemble("main: li r1, 3\nhalt")
	c := New(p, trace.Discard)
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if !c.Halted() {
		t.Error("did not halt")
	}
}

func TestRemByZeroFaults(t *testing.T) {
	p := asm.MustAssemble("main: li r1, 5\nrem r2, r1, r0\nhalt")
	c := New(p, trace.Discard)
	if err := c.Run(0); err == nil || !strings.Contains(err.Error(), "remainder by zero") {
		t.Errorf("err = %v", err)
	}
}
