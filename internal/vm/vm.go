// Package vm is the functional simulator that executes assembled
// programs and emits their memory-reference streams. It corresponds to
// the SHADE-derived execution-driven simulator in the paper's
// uniprocessor methodology (Section 5.1): the program really executes
// (registers and memory change), and every instruction fetch, load, and
// store is pushed into a trace.Sink consumed online by cache models.
//
// Memory is a sparse, demand-paged byte store so workloads can touch
// tens of megabytes (the Synopsys-like workload exceeds 50 MB) without
// preallocating them.
package vm

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/trace"
)

// ErrBudget is returned by Run when the instruction budget expires
// before the program halts. This is the normal way workload simulations
// end, so callers usually treat it as success.
var ErrBudget = errors.New("vm: instruction budget exhausted")

const (
	pageShift = 16 // 64 KiB pages
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Memory is a sparse byte-addressable memory.
type Memory struct {
	pages map[uint64]*[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Memory) page(addr uint64) *[pageSize]byte {
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// Load8 returns the byte at addr (0 for untouched memory).
func (m *Memory) Load8(addr uint64) byte {
	if p := m.pages[addr>>pageShift]; p != nil {
		return p[addr&pageMask]
	}
	return 0
}

// Store8 stores one byte.
func (m *Memory) Store8(addr uint64, v byte) {
	m.page(addr)[addr&pageMask] = v
}

// checkSize panics on an access width the ISA cannot produce. Step()
// only ever passes isa.Op.MemSize() results (1, 2, 4 or 8 for every
// load/store opcode), so this guards direct Memory users: a bad width
// would otherwise silently read or write a garbage-sized value.
func checkSize(size int) {
	switch size {
	case 1, 2, 4, 8:
	default:
		panic(fmt.Sprintf("vm: invalid memory access size %d (must be 1, 2, 4 or 8)", size))
	}
}

// Read returns size bytes at addr as a little-endian unsigned integer.
// size must be 1, 2, 4 or 8. Accesses may span pages.
func (m *Memory) Read(addr uint64, size int) uint64 {
	checkSize(size)
	// Fast path: within one page.
	off := addr & pageMask
	if off+uint64(size) <= pageSize {
		p := m.pages[addr>>pageShift]
		if p == nil {
			return 0
		}
		var v uint64
		for i := size - 1; i >= 0; i-- {
			v = v<<8 | uint64(p[off+uint64(i)])
		}
		return v
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(m.Load8(addr+uint64(i)))
	}
	return v
}

// Write stores size bytes at addr, little-endian.
// size must be 1, 2, 4 or 8. Accesses may span pages.
func (m *Memory) Write(addr uint64, size int, v uint64) {
	checkSize(size)
	off := addr & pageMask
	if off+uint64(size) <= pageSize {
		p := m.page(addr)
		for i := 0; i < size; i++ {
			p[off+uint64(i)] = byte(v)
			v >>= 8
		}
		return
	}
	for i := 0; i < size; i++ {
		m.Store8(addr+uint64(i), byte(v))
		v >>= 8
	}
}

// PagesAllocated returns how many 64 KiB pages have been touched.
func (m *Memory) PagesAllocated() int { return len(m.pages) }

// CPU executes one program.
type CPU struct {
	Regs [isa.NumRegs]uint64
	PC   uint64
	Mem  *Memory

	prog *isa.Program
	sink trace.Sink

	// Batched emission (active only inside Run): when the sink supports
	// trace.BatchSink, references are staged in batch and handed over in
	// slices, eliminating one interface call per reference.
	bsink    trace.BatchSink
	batch    []trace.Ref
	batching bool

	// Instructions counts retired instructions (including nops).
	Instructions int64
	// Branches and TakenBranches count conditional branches.
	Branches      int64
	TakenBranches int64
	// FloatOps counts floating-point arithmetic instructions.
	FloatOps int64
	halted   bool
}

// New creates a CPU for the program, loading its data segments, with
// references delivered to sink (which may be trace.Discard).
func New(p *isa.Program, sink trace.Sink) *CPU {
	c := &CPU{Mem: NewMemory(), prog: p, sink: sink, PC: p.Entry}
	for _, seg := range p.Data {
		for i, b := range seg.Bytes {
			if b != 0 {
				c.Mem.Store8(seg.Base+uint64(i), b)
			}
		}
	}
	// A stack for workloads that use call/ret with spills: grows down
	// from just below the data base.
	c.Regs[isa.RegSP] = asmStackTop
	return c
}

// asmStackTop is where the simulated stack starts (grows down).
const asmStackTop = 0xF0000

// Halted reports whether the program executed a halt instruction.
func (c *CPU) Halted() bool { return c.halted }

// refBatchLen is the Run-loop staging buffer size. Large enough to
// amortise the batched-sink call, small enough to stay cache-resident.
const refBatchLen = 256

// emit delivers one reference, staging it when batching is active.
func (c *CPU) emit(r trace.Ref) {
	if !c.batching {
		c.sink.Ref(r)
		return
	}
	c.batch = append(c.batch, r)
	if len(c.batch) == cap(c.batch) {
		c.bsink.Refs(c.batch)
		c.batch = c.batch[:0]
	}
}

// flushBatch drains any staged references to the batched sink.
func (c *CPU) flushBatch() {
	if len(c.batch) > 0 {
		c.bsink.Refs(c.batch)
		c.batch = c.batch[:0]
	}
}

// Run executes up to budget instructions (or forever if budget <= 0,
// until halt). It returns nil if the program halted, ErrBudget if the
// budget expired first, or an execution error (bad opcode, divide by
// zero, fetch outside the code segment).
//
// When the sink implements trace.BatchSink, Run stages references in a
// reusable buffer and delivers them in slices; the stream content and
// order are identical, and the buffer is drained before Run returns.
// Direct Step callers always get per-reference delivery.
func (c *CPU) Run(budget int64) error {
	if b, ok := c.sink.(trace.BatchSink); ok && !c.batching {
		c.bsink = b
		if c.batch == nil {
			c.batch = make([]trace.Ref, 0, refBatchLen)
		}
		c.batching = true
		defer func() {
			c.flushBatch()
			c.batching = false
		}()
	}
	for budget <= 0 || c.Instructions < budget {
		if c.halted {
			return nil
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
	if c.halted {
		return nil
	}
	return ErrBudget
}

// Step executes a single instruction.
func (c *CPU) Step() error {
	ins, ok := c.prog.InstrAt(c.PC)
	if !ok {
		return fmt.Errorf("vm: instruction fetch outside code segment at 0x%x", c.PC)
	}
	c.emit(trace.Ref{Kind: trace.Ifetch, Addr: c.PC, Size: isa.WordSize})
	c.Instructions++
	nextPC := c.PC + isa.WordSize

	r := &c.Regs
	rs1 := r[ins.Rs1]
	rs2 := r[ins.Rs2]
	var rd uint64
	writeRd := true

	switch ins.Op {
	case isa.OpAdd:
		rd = rs1 + rs2
	case isa.OpSub:
		rd = rs1 - rs2
	case isa.OpAnd:
		rd = rs1 & rs2
	case isa.OpOr:
		rd = rs1 | rs2
	case isa.OpXor:
		rd = rs1 ^ rs2
	case isa.OpSll:
		rd = rs1 << (rs2 & 63)
	case isa.OpSrl:
		rd = rs1 >> (rs2 & 63)
	case isa.OpSra:
		rd = uint64(int64(rs1) >> (rs2 & 63))
	case isa.OpMul:
		rd = rs1 * rs2
	case isa.OpDiv:
		if rs2 == 0 {
			return fmt.Errorf("vm: divide by zero at 0x%x", c.PC)
		}
		rd = uint64(int64(rs1) / int64(rs2))
	case isa.OpRem:
		if rs2 == 0 {
			return fmt.Errorf("vm: remainder by zero at 0x%x", c.PC)
		}
		rd = uint64(int64(rs1) % int64(rs2))
	case isa.OpSlt:
		rd = b2u(int64(rs1) < int64(rs2))
	case isa.OpSltu:
		rd = b2u(rs1 < rs2)

	case isa.OpAddi:
		rd = rs1 + uint64(ins.Imm)
	case isa.OpAndi:
		rd = rs1 & uint64(ins.Imm)
	case isa.OpOri:
		rd = rs1 | uint64(ins.Imm)
	case isa.OpXori:
		rd = rs1 ^ uint64(ins.Imm)
	case isa.OpSlli:
		rd = rs1 << (uint64(ins.Imm) & 63)
	case isa.OpSrli:
		rd = rs1 >> (uint64(ins.Imm) & 63)
	case isa.OpSrai:
		rd = uint64(int64(rs1) >> (uint64(ins.Imm) & 63))
	case isa.OpSlti:
		rd = b2u(int64(rs1) < ins.Imm)
	case isa.OpMuli:
		rd = rs1 * uint64(ins.Imm)
	case isa.OpLui:
		rd = uint64(ins.Imm) << 16

	case isa.OpFAdd:
		c.FloatOps++
		rd = math.Float64bits(math.Float64frombits(rs1) + math.Float64frombits(rs2))
	case isa.OpFSub:
		c.FloatOps++
		rd = math.Float64bits(math.Float64frombits(rs1) - math.Float64frombits(rs2))
	case isa.OpFMul:
		c.FloatOps++
		rd = math.Float64bits(math.Float64frombits(rs1) * math.Float64frombits(rs2))
	case isa.OpFDiv:
		c.FloatOps++
		rd = math.Float64bits(math.Float64frombits(rs1) / math.Float64frombits(rs2))
	case isa.OpFSqrt:
		c.FloatOps++
		rd = math.Float64bits(math.Sqrt(math.Float64frombits(rs1)))
	case isa.OpCvtIF:
		c.FloatOps++
		rd = math.Float64bits(float64(int64(rs1)))
	case isa.OpCvtFI:
		c.FloatOps++
		rd = uint64(int64(math.Float64frombits(rs1)))
	case isa.OpFSlt:
		c.FloatOps++
		rd = b2u(math.Float64frombits(rs1) < math.Float64frombits(rs2))

	case isa.OpLb, isa.OpLbu, isa.OpLh, isa.OpLhu, isa.OpLw, isa.OpLwu, isa.OpLd:
		addr := rs1 + uint64(ins.Imm)
		size := ins.Op.MemSize()
		c.emit(trace.Ref{Kind: trace.Load, Addr: addr, Size: uint8(size)})
		v := c.Mem.Read(addr, size)
		switch ins.Op {
		case isa.OpLb:
			v = uint64(int64(int8(v)))
		case isa.OpLh:
			v = uint64(int64(int16(v)))
		case isa.OpLw:
			v = uint64(int64(int32(v)))
		}
		rd = v

	case isa.OpSb, isa.OpSh, isa.OpSw, isa.OpSd:
		addr := rs1 + uint64(ins.Imm)
		size := ins.Op.MemSize()
		c.emit(trace.Ref{Kind: trace.Store, Addr: addr, Size: uint8(size)})
		c.Mem.Write(addr, size, rs2)
		writeRd = false

	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltu, isa.OpBgeu:
		c.Branches++
		var taken bool
		switch ins.Op {
		case isa.OpBeq:
			taken = rs1 == rs2
		case isa.OpBne:
			taken = rs1 != rs2
		case isa.OpBlt:
			taken = int64(rs1) < int64(rs2)
		case isa.OpBge:
			taken = int64(rs1) >= int64(rs2)
		case isa.OpBltu:
			taken = rs1 < rs2
		case isa.OpBgeu:
			taken = rs1 >= rs2
		}
		if taken {
			c.TakenBranches++
			nextPC = uint64(ins.Imm)
		}
		writeRd = false

	case isa.OpJal:
		rd = c.PC + isa.WordSize
		nextPC = uint64(ins.Imm)
	case isa.OpJalr:
		rd = c.PC + isa.WordSize
		nextPC = rs1 + uint64(ins.Imm)

	case isa.OpNop:
		writeRd = false
	case isa.OpHalt:
		c.halted = true
		writeRd = false

	default:
		return fmt.Errorf("vm: invalid opcode %v at 0x%x", ins.Op, c.PC)
	}

	if writeRd && ins.Rd != isa.RegZero {
		r[ins.Rd] = rd
	}
	r[isa.RegZero] = 0
	c.PC = nextPC
	return nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// RunProgram is a convenience wrapper: assemble-free execution of a
// prepared program for up to budget instructions, returning the CPU for
// inspection. An ErrBudget result is mapped to nil since budget
// expiry is the expected outcome for workload simulation.
func RunProgram(p *isa.Program, sink trace.Sink, budget int64) (*CPU, error) {
	c := New(p, sink)
	err := c.Run(budget)
	if errors.Is(err, ErrBudget) {
		err = nil
	}
	return c, err
}
