package vm

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/trace"
)

// Property tests cross-checking the simulator's instruction semantics
// against Go's own arithmetic, using testing/quick to generate operand
// values.

// evalBinary runs "op r3, r1, r2" with the given operand values and
// returns r3.
func evalBinary(t *testing.T, op string, a, b uint64) uint64 {
	t.Helper()
	src := fmt.Sprintf(`
	main:	%s r3, r1, r2
		halt
	`, op)
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	c := New(p, trace.Discard)
	c.Regs[1] = a
	c.Regs[2] = b
	if err := c.Run(0); err != nil {
		t.Fatalf("%s(%#x, %#x): %v", op, a, b, err)
	}
	return c.Regs[3]
}

func TestALUSemanticsProperty(t *testing.T) {
	ops := map[string]func(a, b uint64) uint64{
		"add": func(a, b uint64) uint64 { return a + b },
		"sub": func(a, b uint64) uint64 { return a - b },
		"and": func(a, b uint64) uint64 { return a & b },
		"or":  func(a, b uint64) uint64 { return a | b },
		"xor": func(a, b uint64) uint64 { return a ^ b },
		"mul": func(a, b uint64) uint64 { return a * b },
		"sll": func(a, b uint64) uint64 { return a << (b & 63) },
		"srl": func(a, b uint64) uint64 { return a >> (b & 63) },
		"sra": func(a, b uint64) uint64 { return uint64(int64(a) >> (b & 63)) },
		"slt": func(a, b uint64) uint64 {
			if int64(a) < int64(b) {
				return 1
			}
			return 0
		},
		"sltu": func(a, b uint64) uint64 {
			if a < b {
				return 1
			}
			return 0
		},
	}
	for op, want := range ops {
		op, want := op, want
		t.Run(op, func(t *testing.T) {
			f := func(a, b uint64) bool {
				return evalBinary(t, op, a, b) == want(a, b)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestDivRemSemanticsProperty(t *testing.T) {
	f := func(a uint64, b uint64) bool {
		if b == 0 {
			b = 1
		}
		// Avoid the INT64_MIN / -1 overflow trap, which Go panics on.
		if int64(a) == math.MinInt64 && int64(b) == -1 {
			return true
		}
		q := evalBinary(t, "div", a, b)
		r := evalBinary(t, "rem", a, b)
		return int64(q) == int64(a)/int64(b) && int64(r) == int64(a)%int64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFloatSemanticsProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		got := evalBinary(t, "fadd", math.Float64bits(a), math.Float64bits(b))
		want := math.Float64bits(a + b)
		gotM := evalBinary(t, "fmul", math.Float64bits(a), math.Float64bits(b))
		wantM := math.Float64bits(a * b)
		return got == want && gotM == wantM
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestMemoryRoundTripProperty: Write then Read returns the value for
// every size, at arbitrary (page-crossing) addresses.
func TestMemoryRoundTripProperty(t *testing.T) {
	f := func(addr uint64, v uint64, szSel uint8) bool {
		addr %= 1 << 30
		size := []int{1, 2, 4, 8}[szSel%4]
		m := NewMemory()
		m.Write(addr, size, v)
		want := v
		if size < 8 {
			want = v & (1<<uint(8*size) - 1)
		}
		return m.Read(addr, size) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestMemoryRejectsBadSizeProperty: every access width outside
// {1,2,4,8} panics with a clear message instead of silently reading or
// writing a garbage-sized value. Step() can never produce such a width
// (it passes isa.Op.MemSize(), which is 1/2/4/8 for every load/store
// opcode), so this guards direct Memory users.
func TestMemoryRejectsBadSizeProperty(t *testing.T) {
	valid := map[int]bool{1: true, 2: true, 4: true, 8: true}
	mustPanic := func(fn func()) (panicked bool) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		fn()
		return false
	}
	f := func(addr uint64, v uint64, size int16) bool {
		sz := int(size)
		m := NewMemory()
		wantPanic := !valid[sz]
		gotR := mustPanic(func() { m.Read(addr%(1<<30), sz) })
		gotW := mustPanic(func() { m.Write(addr%(1<<30), sz, v) })
		return gotR == wantPanic && gotW == wantPanic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	for _, sz := range []int{0, -1, 3, 5, 7, 9, 16, 1 << 20} {
		if !mustPanic(func() { NewMemory().Read(0, sz) }) {
			t.Errorf("Read with size %d did not panic", sz)
		}
	}
}

// TestMemoryDisjointWritesProperty: writes to disjoint ranges do not
// interfere.
func TestMemoryDisjointWritesProperty(t *testing.T) {
	f := func(a, b uint64, va, vb uint64) bool {
		a %= 1 << 20
		b %= 1 << 20
		if a/8 == b/8 {
			return true // overlapping, skip
		}
		a, b = a&^7, b&^7
		m := NewMemory()
		m.Write(a, 8, va)
		m.Write(b, 8, vb)
		return m.Read(a, 8) == va && m.Read(b, 8) == vb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestInstructionCountMatchesIfetches: the VM's retired-instruction
// counter always equals the number of ifetch events emitted.
func TestInstructionCountMatchesIfetches(t *testing.T) {
	f := func(n uint16) bool {
		iters := int64(n%500) + 1
		src := fmt.Sprintf(`
	main:	li r1, %d
	loop:	addi r1, r1, -1
		bne r1, zero, loop
		halt
	`, iters)
		var counts trace.Counts
		p := asm.MustAssemble(src)
		c := New(p, &counts)
		if err := c.Run(0); err != nil {
			return false
		}
		return c.Instructions == counts.Ifetches &&
			c.Instructions == 1+2*iters+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestBranchSemantics: every branch opcode agrees with the Go
// comparison it models.
func TestBranchSemantics(t *testing.T) {
	cases := map[string]func(a, b uint64) bool{
		"beq":  func(a, b uint64) bool { return a == b },
		"bne":  func(a, b uint64) bool { return a != b },
		"blt":  func(a, b uint64) bool { return int64(a) < int64(b) },
		"bge":  func(a, b uint64) bool { return int64(a) >= int64(b) },
		"bltu": func(a, b uint64) bool { return a < b },
		"bgeu": func(a, b uint64) bool { return a >= b },
	}
	for op, want := range cases {
		op, want := op, want
		t.Run(op, func(t *testing.T) {
			f := func(a, b uint64) bool {
				src := fmt.Sprintf(`
	main:	%s r1, r2, taken
		li r3, 0
		halt
	taken:	li r3, 1
		halt
	`, op)
				p := asm.MustAssemble(src)
				c := New(p, trace.Discard)
				c.Regs[1] = a
				c.Regs[2] = b
				if err := c.Run(0); err != nil {
					return false
				}
				return (c.Regs[3] == 1) == want(a, b)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestProgramsAreDeterministic: the same program and budget produce
// identical final machine state.
func TestProgramsAreDeterministic(t *testing.T) {
	src := `
	main:	li r3, 12345
	loop:	muli r4, r3, 1103515245
		addi r4, r4, 12345
		andi r3, r4, 0x7fffffff
		andi r9, r3, 0xfff8
		addi r9, r9, 0x100000
		sd r3, 0(r9)
		ld r5, 0(r9)
		add r7, r7, r5
		j loop
	`
	run := func() [isa.NumRegs]uint64 {
		c := New(asm.MustAssemble(src), trace.Discard)
		_ = c.Run(50_000)
		return c.Regs
	}
	if run() != run() {
		t.Error("identical runs diverged")
	}
}
