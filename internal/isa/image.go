package isa

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Program images. The paper's device boots by having a program
// downloaded over its serial links (Section 3's self-test story); the
// image format here is the serialized form of an assembled Program —
// compact, versioned, and self-describing — used by cmd/iramasm to
// build once and run many times.
//
// Layout (all integers little-endian, lengths varint-encoded):
//
//	magic    [8]byte  "iramimg1"
//	entry    uvarint
//	codeBase uvarint
//	nCode    uvarint
//	code     nCode × {op u8, rd u8, rs1 u8, rs2 u8, imm varint}
//	nData    uvarint
//	data     nData × {base uvarint, len uvarint, bytes}
//	nSyms    uvarint
//	syms     nSyms × {len uvarint, name, addr uvarint}

var imageMagic = [8]byte{'i', 'r', 'a', 'm', 'i', 'm', 'g', '1'}

// ErrBadImage reports a corrupt or truncated program image.
var ErrBadImage = errors.New("isa: bad program image")

// imageLimit bounds decoded sizes to keep corrupt inputs from
// allocating absurd amounts (16M instructions / 1 GiB data).
const (
	imageMaxCode = 16 << 20
	imageMaxData = 1 << 30
)

// WriteImage serializes the program.
func WriteImage(w io.Writer, p *Program) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(imageMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putU := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putI := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putU(p.Entry); err != nil {
		return err
	}
	if err := putU(p.CodeBase); err != nil {
		return err
	}
	if err := putU(uint64(len(p.Code))); err != nil {
		return err
	}
	for _, ins := range p.Code {
		if _, err := bw.Write([]byte{byte(ins.Op), ins.Rd, ins.Rs1, ins.Rs2}); err != nil {
			return err
		}
		if err := putI(ins.Imm); err != nil {
			return err
		}
	}
	if err := putU(uint64(len(p.Data))); err != nil {
		return err
	}
	for _, seg := range p.Data {
		if err := putU(seg.Base); err != nil {
			return err
		}
		if err := putU(uint64(len(seg.Bytes))); err != nil {
			return err
		}
		if _, err := bw.Write(seg.Bytes); err != nil {
			return err
		}
	}
	// Symbols in sorted order for deterministic images.
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)
	if err := putU(uint64(len(names))); err != nil {
		return err
	}
	for _, n := range names {
		if err := putU(uint64(len(n))); err != nil {
			return err
		}
		if _, err := bw.WriteString(n); err != nil {
			return err
		}
		if err := putU(p.Symbols[n]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadImage deserializes a program image.
func ReadImage(r io.Reader) (*Program, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: missing header", ErrBadImage)
	}
	if magic != imageMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadImage)
	}
	getU := func() (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("%w: truncated", ErrBadImage)
		}
		return v, nil
	}
	p := &Program{Symbols: map[string]uint64{}}
	var err error
	if p.Entry, err = getU(); err != nil {
		return nil, err
	}
	if p.CodeBase, err = getU(); err != nil {
		return nil, err
	}
	nCode, err := getU()
	if err != nil {
		return nil, err
	}
	if nCode > imageMaxCode {
		return nil, fmt.Errorf("%w: %d instructions exceeds limit", ErrBadImage, nCode)
	}
	p.Code = make([]Instr, nCode)
	for i := range p.Code {
		var hdr [4]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated instruction", ErrBadImage)
		}
		imm, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated immediate", ErrBadImage)
		}
		op := Op(hdr[0])
		if op == OpInvalid || op >= numOps {
			return nil, fmt.Errorf("%w: invalid opcode %d", ErrBadImage, hdr[0])
		}
		if hdr[1] >= NumRegs || hdr[2] >= NumRegs || hdr[3] >= NumRegs {
			return nil, fmt.Errorf("%w: register out of range", ErrBadImage)
		}
		p.Code[i] = Instr{Op: op, Rd: hdr[1], Rs1: hdr[2], Rs2: hdr[3], Imm: imm}
	}
	nData, err := getU()
	if err != nil {
		return nil, err
	}
	var total uint64
	for i := uint64(0); i < nData; i++ {
		base, err := getU()
		if err != nil {
			return nil, err
		}
		length, err := getU()
		if err != nil {
			return nil, err
		}
		total += length
		if total > imageMaxData {
			return nil, fmt.Errorf("%w: data exceeds limit", ErrBadImage)
		}
		seg := Segment{Base: base, Bytes: make([]byte, length)}
		if _, err := io.ReadFull(br, seg.Bytes); err != nil {
			return nil, fmt.Errorf("%w: truncated data segment", ErrBadImage)
		}
		p.Data = append(p.Data, seg)
	}
	nSyms, err := getU()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nSyms; i++ {
		nameLen, err := getU()
		if err != nil {
			return nil, err
		}
		if nameLen > 4096 {
			return nil, fmt.Errorf("%w: symbol name too long", ErrBadImage)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("%w: truncated symbol", ErrBadImage)
		}
		addr, err := getU()
		if err != nil {
			return nil, err
		}
		p.Symbols[string(name)] = addr
	}
	return p, nil
}
