// Package isa defines the instruction set of the simulated processor.
//
// The paper (Saulsbury et al., ISCA'96) evaluates a standard 5-stage
// single-issue pipeline running the SPARC V8 ISA, and is explicit that
// the ISA itself is orthogonal to the processor/memory-integration
// proposal ("an ordinary, general-purpose, commodity ISA is assumed").
// We therefore define a conventional 32-register load/store RISC ISA —
// close in spirit to SPARC V8 or MIPS — sufficient to express real
// workload kernels whose instruction-fetch and data-reference streams
// drive the cache and CPI models.
//
// Instructions are held in decoded form (one struct per instruction)
// rather than as encoded 32-bit words; every instruction still occupies
// exactly 4 bytes of the simulated address space so that instruction
// fetch addresses, cache line mappings, and code footprints are exact.
package isa

import "fmt"

// WordSize is the size of one instruction in the simulated address
// space, in bytes.
const WordSize = 4

// NumRegs is the number of general-purpose registers. Register 0 is
// hard-wired to zero, as on SPARC (%g0) and MIPS ($zero).
const NumRegs = 32

// Conventional register assignments used by the assembler's aliases.
const (
	RegZero = 0  // always zero
	RegSP   = 30 // stack pointer
	RegRA   = 31 // return address (link register)
)

// Op enumerates the instruction opcodes.
type Op uint8

// Opcode space. The groups matter to the VM's dispatch and to the
// pipeline model's instruction classification (IsLoad/IsStore/IsBranch).
const (
	OpInvalid Op = iota

	// ALU register-register: rd = rs1 op rs2.
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpSra
	OpMul
	OpDiv
	OpRem
	OpSlt  // set if less than, signed
	OpSltu // set if less than, unsigned

	// ALU register-immediate: rd = rs1 op imm.
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlli
	OpSrli
	OpSrai
	OpSlti
	OpMuli
	OpLui // rd = imm << 16

	// Floating-point arithmetic. Operands live in the general register
	// file (the pipeline model charges their latency separately via the
	// base-CPI component, exactly as the paper does); values are IEEE
	// bit patterns manipulated with math.Float64bits in the VM.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFSqrt // rd = sqrt(rs1)
	OpCvtIF // rd = float64(int64(rs1))
	OpCvtFI // rd = int64(float64 bits in rs1)
	OpFSlt  // rd = 1 if rs1 < rs2 as float64

	// Loads: rd = mem[rs1+imm]. L* sign-extend, L*u zero-extend.
	OpLb
	OpLbu
	OpLh
	OpLhu
	OpLw
	OpLwu
	OpLd // 8 bytes

	// Stores: mem[rs1+imm] = rs2.
	OpSb
	OpSh
	OpSw
	OpSd

	// Control transfer.
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBltu
	OpBgeu
	OpJal  // rd = pc+4; pc = imm (absolute target resolved by assembler)
	OpJalr // rd = pc+4; pc = rs1 + imm

	// Misc.
	OpNop
	OpHalt

	numOps // sentinel
)

var opNames = [numOps]string{
	OpInvalid: "invalid",
	OpAdd:     "add", OpSub: "sub", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpSll: "sll", OpSrl: "srl", OpSra: "sra", OpMul: "mul", OpDiv: "div",
	OpRem: "rem", OpSlt: "slt", OpSltu: "sltu",
	OpAddi: "addi", OpAndi: "andi", OpOri: "ori", OpXori: "xori",
	OpSlli: "slli", OpSrli: "srli", OpSrai: "srai", OpSlti: "slti",
	OpMuli: "muli", OpLui: "lui",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFSqrt: "fsqrt", OpCvtIF: "cvtif", OpCvtFI: "cvtfi", OpFSlt: "fslt",
	OpLb: "lb", OpLbu: "lbu", OpLh: "lh", OpLhu: "lhu", OpLw: "lw",
	OpLwu: "lwu", OpLd: "ld",
	OpSb: "sb", OpSh: "sh", OpSw: "sw", OpSd: "sd",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpBltu: "bltu", OpBgeu: "bgeu", OpJal: "jal", OpJalr: "jalr",
	OpNop: "nop", OpHalt: "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// OperandClass describes which operand fields an opcode uses and how
// the assembler writes them. It is the single classification shared by
// the assembler (parsing), the disassembler (rendering), and tooling;
// the VM's Step dispatch is consistent with it by construction.
type OperandClass uint8

const (
	ClassNone   OperandClass = iota // no operands (nop, halt) or invalid
	ClassRRR                        // op rd, rs1, rs2
	ClassRRI                        // op rd, rs1, imm
	ClassRR                         // op rd, rs1 (fsqrt, cvtif, cvtfi)
	ClassRI                         // op rd, imm (lui)
	ClassLoad                       // op rd, imm(rs1)
	ClassStore                      // op rs2, imm(rs1)  (value register first)
	ClassBranch                     // op rs1, rs2, target
	ClassJal                        // jal rd, target
	ClassJalr                       // jalr rd, rs1, imm
)

// Class returns the operand class of the opcode.
func (o Op) Class() OperandClass {
	switch {
	case o >= OpAdd && o <= OpSltu, o == OpFAdd, o == OpFSub, o == OpFMul,
		o == OpFDiv, o == OpFSlt:
		return ClassRRR
	case o >= OpAddi && o <= OpMuli:
		return ClassRRI
	case o == OpFSqrt, o == OpCvtIF, o == OpCvtFI:
		return ClassRR
	case o == OpLui:
		return ClassRI
	case o.IsLoad():
		return ClassLoad
	case o.IsStore():
		return ClassStore
	case o.IsBranch():
		return ClassBranch
	case o == OpJal:
		return ClassJal
	case o == OpJalr:
		return ClassJalr
	default:
		return ClassNone
	}
}

// IsLoad reports whether the opcode reads data memory.
func (o Op) IsLoad() bool { return o >= OpLb && o <= OpLd }

// IsStore reports whether the opcode writes data memory.
func (o Op) IsStore() bool { return o >= OpSb && o <= OpSd }

// IsBranch reports whether the opcode is a conditional branch.
func (o Op) IsBranch() bool { return o >= OpBeq && o <= OpBgeu }

// IsJump reports whether the opcode is an unconditional control transfer.
func (o Op) IsJump() bool { return o == OpJal || o == OpJalr }

// IsFloat reports whether the opcode is a floating-point operation.
func (o Op) IsFloat() bool { return o >= OpFAdd && o <= OpFSlt }

// MemSize returns the access width in bytes for a load or store, or 0.
func (o Op) MemSize() int {
	switch o {
	case OpLb, OpLbu, OpSb:
		return 1
	case OpLh, OpLhu, OpSh:
		return 2
	case OpLw, OpLwu, OpSw:
		return 4
	case OpLd, OpSd:
		return 8
	default:
		return 0
	}
}

// Instr is one decoded instruction.
type Instr struct {
	Op       Op
	Rd       uint8
	Rs1, Rs2 uint8
	Imm      int64
}

// String renders the instruction in assembler syntax.
func (i Instr) String() string {
	switch i.Op.Class() {
	case ClassLoad:
		return fmt.Sprintf("%s r%d, %d(r%d)", i.Op, i.Rd, i.Imm, i.Rs1)
	case ClassStore:
		return fmt.Sprintf("%s r%d, %d(r%d)", i.Op, i.Rs2, i.Imm, i.Rs1)
	case ClassBranch:
		return fmt.Sprintf("%s r%d, r%d, 0x%x", i.Op, i.Rs1, i.Rs2, i.Imm)
	case ClassJal:
		return fmt.Sprintf("jal r%d, 0x%x", i.Rd, i.Imm)
	case ClassJalr:
		return fmt.Sprintf("jalr r%d, r%d, %d", i.Rd, i.Rs1, i.Imm)
	case ClassRI:
		return fmt.Sprintf("%s r%d, %d", i.Op, i.Rd, i.Imm)
	case ClassRR:
		return fmt.Sprintf("%s r%d, r%d", i.Op, i.Rd, i.Rs1)
	case ClassRRI:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case ClassRRR:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Rs1, i.Rs2)
	default:
		return i.Op.String()
	}
}

// Program is an assembled program: instructions at a base address plus
// initialised data segments.
type Program struct {
	Entry    uint64  // address of the first instruction to execute
	CodeBase uint64  // address of Code[0]
	Code     []Instr // instruction at CodeBase + 4*i
	Data     []Segment
	Symbols  map[string]uint64 // label → address (for tests and tooling)
}

// Segment is a contiguous initialised region of the data address space.
type Segment struct {
	Base  uint64
	Bytes []byte
}

// CodeSize returns the code footprint in bytes.
func (p *Program) CodeSize() int { return len(p.Code) * WordSize }

// InstrAt returns the instruction at the given address.
// ok is false if the address is outside the code segment or unaligned.
func (p *Program) InstrAt(addr uint64) (Instr, bool) {
	if addr < p.CodeBase || addr%WordSize != 0 {
		return Instr{}, false
	}
	i := (addr - p.CodeBase) / WordSize
	if i >= uint64(len(p.Code)) {
		return Instr{}, false
	}
	return p.Code[i], true
}
