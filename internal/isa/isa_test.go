package isa

import (
	"bytes"
	"testing"
)

func TestOpClassification(t *testing.T) {
	cases := []struct {
		op              Op
		load, store, br bool
		jump, flt       bool
		memSize         int
	}{
		{OpAdd, false, false, false, false, false, 0},
		{OpLb, true, false, false, false, false, 1},
		{OpLh, true, false, false, false, false, 2},
		{OpLw, true, false, false, false, false, 4},
		{OpLd, true, false, false, false, false, 8},
		{OpSb, false, true, false, false, false, 1},
		{OpSd, false, true, false, false, false, 8},
		{OpBeq, false, false, true, false, false, 0},
		{OpBgeu, false, false, true, false, false, 0},
		{OpJal, false, false, false, true, false, 0},
		{OpJalr, false, false, false, true, false, 0},
		{OpFAdd, false, false, false, false, true, 0},
		{OpFSlt, false, false, false, false, true, 0},
		{OpHalt, false, false, false, false, false, 0},
	}
	for _, c := range cases {
		if c.op.IsLoad() != c.load || c.op.IsStore() != c.store ||
			c.op.IsBranch() != c.br || c.op.IsJump() != c.jump ||
			c.op.IsFloat() != c.flt || c.op.MemSize() != c.memSize {
			t.Errorf("%v classification wrong", c.op)
		}
	}
}

func TestOpStringsComplete(t *testing.T) {
	for op := OpInvalid; op < numOps; op++ {
		if op.String() == "" {
			t.Errorf("opcode %d has empty name", op)
		}
	}
	if Op(200).String() == "" {
		t.Error("out-of-range opcode must still format")
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		ins  Instr
		want string
	}{
		{Instr{Op: OpNop}, "nop"},
		{Instr{Op: OpLw, Rd: 1, Rs1: 2, Imm: 8}, "lw r1, 8(r2)"},
		{Instr{Op: OpSw, Rs2: 3, Rs1: 30, Imm: -4}, "sw r3, -4(r30)"},
		{Instr{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Instr{Op: OpAddi, Rd: 1, Rs1: 2, Imm: 5}, "addi r1, r2, 5"},
		{Instr{Op: OpJal, Rd: 31, Imm: 0x1000}, "jal r31, 0x1000"},
	}
	for _, c := range cases {
		if got := c.ins.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestProgramInstrAt(t *testing.T) {
	p := &Program{
		CodeBase: 0x1000,
		Code:     []Instr{{Op: OpNop}, {Op: OpHalt}},
	}
	if ins, ok := p.InstrAt(0x1004); !ok || ins.Op != OpHalt {
		t.Error("InstrAt(0x1004) wrong")
	}
	if _, ok := p.InstrAt(0x1008); ok {
		t.Error("InstrAt past end should fail")
	}
	if _, ok := p.InstrAt(0xffc); ok {
		t.Error("InstrAt before base should fail")
	}
	if _, ok := p.InstrAt(0x1002); ok {
		t.Error("unaligned InstrAt should fail")
	}
	if p.CodeSize() != 8 {
		t.Errorf("CodeSize = %d", p.CodeSize())
	}
}

func sampleProgram() *Program {
	return &Program{
		Entry:    0x1004,
		CodeBase: 0x1000,
		Code: []Instr{
			{Op: OpNop},
			{Op: OpAddi, Rd: 1, Rs1: 0, Imm: -42},
			{Op: OpLd, Rd: 2, Rs1: 1, Imm: 0x1000000},
			{Op: OpHalt},
		},
		Data: []Segment{
			{Base: 0x100000, Bytes: []byte{1, 2, 3, 4, 5}},
			{Base: 0x200000, Bytes: []byte{0xff}},
		},
		Symbols: map[string]uint64{"main": 0x1004, "loop": 0x1008},
	}
}

func TestImageRoundTrip(t *testing.T) {
	p := sampleProgram()
	var buf bytes.Buffer
	if err := WriteImage(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entry != p.Entry || got.CodeBase != p.CodeBase {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Code) != len(p.Code) {
		t.Fatalf("code length %d != %d", len(got.Code), len(p.Code))
	}
	for i := range p.Code {
		if got.Code[i] != p.Code[i] {
			t.Errorf("instr %d: %+v != %+v", i, got.Code[i], p.Code[i])
		}
	}
	if len(got.Data) != 2 || got.Data[0].Base != 0x100000 ||
		!bytes.Equal(got.Data[0].Bytes, p.Data[0].Bytes) {
		t.Errorf("data mismatch: %+v", got.Data)
	}
	if got.Symbols["loop"] != 0x1008 {
		t.Errorf("symbols: %+v", got.Symbols)
	}
}

func TestImageDeterministic(t *testing.T) {
	p := sampleProgram()
	var a, b bytes.Buffer
	if err := WriteImage(&a, p); err != nil {
		t.Fatal(err)
	}
	if err := WriteImage(&b, p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("image encoding not deterministic")
	}
}

func TestImageRejectsCorruption(t *testing.T) {
	p := sampleProgram()
	var buf bytes.Buffer
	if err := WriteImage(&buf, p); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	if _, err := ReadImage(bytes.NewReader([]byte("garbagegarbage"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadImage(bytes.NewReader(full[:len(full)-4])); err == nil {
		t.Error("truncated image accepted")
	}
	// Corrupt an opcode byte to an invalid value.
	bad := append([]byte(nil), full...)
	// Find the first instruction's opcode: after magic(8)+3 varints
	// (entry/codeBase/nCode, each small here = 2,2,1 bytes... locate by
	// decoding offsets is brittle; instead corrupt every byte position
	// and require that no corruption panics (errors are fine).
	for i := 8; i < len(bad); i++ {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0xff
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ReadImage panicked on corruption at byte %d: %v", i, r)
				}
			}()
			_, _ = ReadImage(bytes.NewReader(mut))
		}()
	}
	_ = bad
}
