package dram

import (
	"testing"
	"testing/quick"
)

func TestProposedParams(t *testing.T) {
	p := Proposed()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Banks != 16 || p.ColumnBytes != 512 || p.BuffersPerBank != 3 {
		t.Errorf("geometry: %+v", p)
	}
	if got := p.AccessNanos(); got != 30 {
		t.Errorf("access time = %v ns, want 30 (6 cycles @ 200 MHz)", got)
	}
	if p.CapacityBytes != 32<<20 {
		t.Errorf("capacity = %d, want 256 Mbit", p.CapacityBytes)
	}
}

func TestBankOfInterleaving(t *testing.T) {
	p := Proposed()
	if p.BankOf(0) != 0 || p.BankOf(511) != 0 {
		t.Error("first column must be bank 0")
	}
	if p.BankOf(512) != 1 {
		t.Error("second column must be bank 1")
	}
	if p.BankOf(512*16) != 0 {
		t.Error("column 16 must wrap to bank 0")
	}
}

func TestAccessTiming(t *testing.T) {
	d := New(Proposed())
	done := d.Access(0, 100)
	if done != 106 {
		t.Errorf("first access done at %d, want 106", done)
	}
	// Same bank immediately after: waits for precharge (106+3 = 109).
	done2 := d.Access(0, 106)
	if done2 != 109+6 {
		t.Errorf("back-to-back same-bank access done at %d, want 115", done2)
	}
	// Different bank: no wait.
	done3 := d.Access(512, 106)
	if done3 != 112 {
		t.Errorf("other-bank access done at %d, want 112", done3)
	}
}

func TestQueueDelay(t *testing.T) {
	d := New(Proposed())
	d.Access(0, 0) // bank 0 busy until 9 (6 access + 3 precharge)
	if got := d.QueueDelay(0, 5); got != 4 {
		t.Errorf("queue delay = %d, want 4", got)
	}
	if got := d.QueueDelay(512, 5); got != 0 {
		t.Errorf("idle bank delay = %d, want 0", got)
	}
}

func TestUtilization(t *testing.T) {
	d := New(Proposed())
	d.Access(0, 0)
	u := d.Utilization(100)
	if u[0] != 0.09 {
		t.Errorf("bank 0 utilisation = %v, want 0.09 (9 busy cycles / 100)", u[0])
	}
	if u[1] != 0 {
		t.Errorf("idle bank utilisation = %v", u[1])
	}
	if m := d.MeanUtilization(100); m != 0.09/16 {
		t.Errorf("mean utilisation = %v", m)
	}
	if d.Accesses() != 1 {
		t.Errorf("accesses = %d", d.Accesses())
	}
}

func TestReset(t *testing.T) {
	d := New(Proposed())
	d.Access(0, 0)
	d.Reset()
	if d.Accesses() != 0 || d.QueueDelay(0, 0) != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []Params{
		{Banks: 0, AccessCycles: 1, ColumnBytes: 512},
		{Banks: 1, AccessCycles: 0, ColumnBytes: 512},
		{Banks: 1, AccessCycles: 1, PrechargeCycles: -1, ColumnBytes: 512},
		{Banks: 1, AccessCycles: 1, ColumnBytes: 100}, // not power of two
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
}

// TestAccessesNeverOverlapPerBank (property): for any request stream,
// a bank's accesses are serialised with precharge gaps.
func TestAccessesNeverOverlapPerBank(t *testing.T) {
	f := func(addrs []uint16, gaps []uint8) bool {
		d := New(Proposed())
		lastDone := make(map[int]uint64)
		now := uint64(0)
		for i, a := range addrs {
			if i < len(gaps) {
				now += uint64(gaps[i] % 8)
			}
			addr := uint64(a) * 64
			b := d.BankOf(addr)
			done := d.Access(addr, now)
			if prev, ok := lastDone[b]; ok {
				// Next access to the same bank must complete at least
				// access+precharge after the previous completion.
				if done < prev+uint64(d.AccessCycles) {
					return false
				}
			}
			if done < now+uint64(d.AccessCycles) {
				return false
			}
			lastDone[b] = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRefreshOverheadTiny(t *testing.T) {
	p := Proposed()
	// 64 ms / 4096 rows at 200 MHz: one 9-cycle refresh every 3125
	// cycles per bank — ~0.3% overhead, negligible as the paper's
	// design assumes.
	frac := p.OverheadFraction(DefaultRefresh())
	if frac > 0.005 {
		t.Errorf("refresh overhead = %.4f, want < 0.5%%", frac)
	}
	if got := DefaultRefresh().IntervalCycles(200); got != 3125 {
		t.Errorf("refresh interval = %d cycles, want 3125", got)
	}
}

func TestRefreshStealsBankTime(t *testing.T) {
	d := New(Proposed())
	d.EnableRefresh(DefaultRefresh())
	// Jump past one refresh interval: the access must queue behind the
	// pending refresh.
	done := d.Access(0, 3125)
	if done <= 3125+uint64(d.AccessCycles) {
		t.Errorf("access at a refresh instant finished at %d; refresh not charged", done)
	}
	if d.Refreshes == 0 {
		t.Error("no refreshes recorded")
	}
	// A later access far from any refresh instant proceeds normally.
	d2 := New(Proposed())
	d2.EnableRefresh(DefaultRefresh())
	if done := d2.Access(0, 100); done != 106 {
		t.Errorf("access away from refresh = %d, want 106", done)
	}
}

func TestRefreshDisabledByDefault(t *testing.T) {
	d := New(Proposed())
	if done := d.Access(0, 1_000_000); done != 1_000_006 {
		t.Errorf("refresh applied without EnableRefresh: done=%d", done)
	}
}
