// Package dram models the banked DRAM array of the integrated
// processor/memory device (Section 4.1): 16 independent banks in a
// 256 Mbit device, 30 ns array access (6 cycles at 200 MHz), three
// 512-byte column buffers per bank (one instruction, two data), and a
// precharge window after each access during which the bank cannot
// accept a new transaction (transition T2 of the Figure 9 GSPN).
//
// The model is a timing model, not a data store: program data lives in
// the functional simulator's memory, while this package answers "when
// will this access complete and how busy are the banks", feeding the
// contention analysis of Sections 5.5–5.6.
package dram

import "fmt"

// Params describes a DRAM device configuration.
type Params struct {
	Banks           int    // independent bank controllers
	AccessCycles    int    // row access time, in CPU cycles
	PrechargeCycles int    // bank recovery time after an access
	ColumnBytes     int    // bytes transferred per array access
	BuffersPerBank  int    // column buffers per bank
	CapacityBytes   uint64 // device capacity
	ClockMHz        int    // CPU clock the cycle counts refer to
}

// Proposed returns the paper's 256 Mbit, 16-bank device: 30 ns access =
// 6 cycles at 200 MHz; 512 B column buffers; 3 buffers per bank (one
// for the I-cache, two for the 2-way D-cache). The precharge window is
// taken as half the access time, consistent with the "four free cycles"
// the paper finds within the 6-cycle access for the victim-cache copy.
func Proposed() Params {
	return Params{
		Banks:           16,
		AccessCycles:    6,
		PrechargeCycles: 3,
		ColumnBytes:     512,
		BuffersPerBank:  3,
		CapacityBytes:   32 << 20, // 256 Mbit
		ClockMHz:        200,
	}
}

// Conventional returns the dual-banked main memory of the reference
// system used to validate the GSPN model (Section 5.5): 2 independent
// banks behind a second-level cache, with a 60 ns access typical for
// external DRAM of the era (12 cycles at 200 MHz).
func Conventional() Params {
	return Params{
		Banks:           2,
		AccessCycles:    12,
		PrechargeCycles: 6,
		ColumnBytes:     32,
		BuffersPerBank:  1,
		CapacityBytes:   64 << 20,
		ClockMHz:        200,
	}
}

// AccessNanos returns the array access time in nanoseconds.
func (p Params) AccessNanos() float64 {
	return float64(p.AccessCycles) * 1000 / float64(p.ClockMHz)
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	switch {
	case p.Banks < 1:
		return fmt.Errorf("dram: need at least one bank, got %d", p.Banks)
	case p.AccessCycles < 1:
		return fmt.Errorf("dram: access time must be positive, got %d", p.AccessCycles)
	case p.PrechargeCycles < 0:
		return fmt.Errorf("dram: negative precharge time %d", p.PrechargeCycles)
	case p.ColumnBytes < 1 || p.ColumnBytes&(p.ColumnBytes-1) != 0:
		return fmt.Errorf("dram: column size must be a power of two, got %d", p.ColumnBytes)
	default:
		return nil
	}
}

// BankOf maps an address to its bank under column interleaving: the
// 512 B column index modulo the bank count, which is how the column
// buffers form a 16-set cache.
func (p Params) BankOf(addr uint64) int {
	return int((addr / uint64(p.ColumnBytes)) % uint64(p.Banks))
}

// Device tracks per-bank timing state against a caller-supplied clock
// (absolute cycle numbers).
type Device struct {
	Params
	nextFree []uint64 // cycle at which each bank can accept a transaction
	busy     []uint64 // total cycles each bank spent busy (access+precharge)
	accesses []uint64 // array accesses per bank
	lastTime uint64

	refreshOn   bool
	refresh     RefreshParams
	lastRefresh []uint64
	// Refreshes counts refresh operations performed.
	Refreshes uint64
}

// New creates a Device. It panics on invalid Params, which indicate a
// programming error in experiment setup.
func New(p Params) *Device {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Device{
		Params:   p,
		nextFree: make([]uint64, p.Banks),
		busy:     make([]uint64, p.Banks),
		accesses: make([]uint64, p.Banks),
	}
}

// Access performs one array access to the bank holding addr, starting
// no earlier than cycle now. It returns the cycle at which the column
// buffer holds the data (i.e. when the access completes). The bank is
// then unavailable until completion + precharge.
func (d *Device) Access(addr uint64, now uint64) (done uint64) {
	b := d.BankOf(addr)
	d.applyRefresh(b, now)
	start := now
	if d.nextFree[b] > start {
		start = d.nextFree[b]
	}
	done = start + uint64(d.AccessCycles)
	d.nextFree[b] = done + uint64(d.PrechargeCycles)
	d.busy[b] += uint64(d.AccessCycles + d.PrechargeCycles)
	d.accesses[b]++
	if done > d.lastTime {
		d.lastTime = done
	}
	return done
}

// QueueDelay returns how many cycles an access to addr issued at cycle
// now would wait before starting, without performing the access.
func (d *Device) QueueDelay(addr uint64, now uint64) uint64 {
	b := d.BankOf(addr)
	if d.nextFree[b] > now {
		return d.nextFree[b] - now
	}
	return 0
}

// Accesses returns the total number of array accesses performed.
func (d *Device) Accesses() uint64 {
	var n uint64
	for _, a := range d.accesses {
		n += a
	}
	return n
}

// Utilization returns each bank's busy fraction over the elapsed
// horizon [0, horizon]. This is the quantity the paper reports in
// Section 5.6 (e.g. "in gcc each of the 16 banks are busy only 1.2% of
// the time, ... 9.6% with 2 banks").
func (d *Device) Utilization(horizon uint64) []float64 {
	u := make([]float64, d.Banks)
	if horizon == 0 {
		return u
	}
	for i, b := range d.busy {
		u[i] = float64(b) / float64(horizon)
	}
	return u
}

// MeanUtilization averages Utilization over banks.
func (d *Device) MeanUtilization(horizon uint64) float64 {
	var sum float64
	for _, u := range d.Utilization(horizon) {
		sum += u
	}
	return sum / float64(d.Banks)
}

// Reset clears timing state but keeps the configuration.
func (d *Device) Reset() {
	for i := range d.nextFree {
		d.nextFree[i] = 0
		d.busy[i] = 0
		d.accesses[i] = 0
	}
	for i := range d.lastRefresh {
		d.lastRefresh[i] = 0
	}
	d.Refreshes = 0
	d.lastTime = 0
}

// Refresh modelling. DRAM cells must be refreshed (the paper notes the
// device is "a complete system" — refresh is generated on chip). The
// standard requirement of the era is refreshing every row within 64 ms;
// with row-granular refresh spread evenly, each bank performs one
// refresh cycle every RefreshInterval cycles, during which it cannot
// serve an access.

// RefreshParams describes the refresh requirement.
type RefreshParams struct {
	PeriodMs int // full-array refresh period (64 ms standard)
	Rows     int // rows per bank
}

// DefaultRefresh returns the era-standard 64 ms / 4096-row refresh.
func DefaultRefresh() RefreshParams { return RefreshParams{PeriodMs: 64, Rows: 4096} }

// IntervalCycles returns cycles between per-bank refresh operations at
// the given clock.
func (r RefreshParams) IntervalCycles(clockMHz int) uint64 {
	totalCycles := uint64(r.PeriodMs) * uint64(clockMHz) * 1000
	return totalCycles / uint64(r.Rows)
}

// OverheadFraction returns the fraction of each bank's time consumed
// by refresh (busy cycles per interval).
func (p Params) OverheadFraction(r RefreshParams) float64 {
	interval := r.IntervalCycles(p.ClockMHz)
	busy := uint64(p.AccessCycles + p.PrechargeCycles)
	return float64(busy) / float64(interval)
}

// EnableRefresh makes the device steal one access+precharge window per
// bank every interval; subsequent Access calls see the bank busy during
// refresh windows.
func (d *Device) EnableRefresh(r RefreshParams) {
	d.refresh = r
	d.refreshOn = true
	d.lastRefresh = make([]uint64, d.Banks)
}

// applyRefresh advances bank b's refresh obligation up to cycle now.
func (d *Device) applyRefresh(b int, now uint64) {
	if !d.refreshOn {
		return
	}
	interval := d.refresh.IntervalCycles(d.ClockMHz)
	busy := uint64(d.AccessCycles + d.PrechargeCycles)
	for d.lastRefresh[b]+interval <= now {
		d.lastRefresh[b] += interval
		// The refresh occupies the bank at its scheduled instant (or
		// right after the current operation completes).
		start := d.lastRefresh[b]
		if d.nextFree[b] > start {
			start = d.nextFree[b]
		}
		d.nextFree[b] = start + busy
		d.busy[b] += busy
		d.Refreshes++
	}
}
